"""The paper's procurement case study (Fig. 3-10, Examples 3.1-3.5),
executed end to end on the engine.

Every rule below is the paper's listing, modulo (a) concrete content for
the '...' elisions and (b) supplier/legal stand-in rules for the remote
parties of Fig. 4 so the scenario runs on one node (the two-node variant
lives in examples/procurement.py).
"""

import pytest

from repro import DemaqServer
from repro.xquery import evaluate_expression

PROCUREMENT = """
create queue crm kind basic mode persistent;
create queue finance kind basic mode persistent;
create queue legal kind basic mode persistent;
create queue supplier kind basic mode persistent;
create queue customer kind basic mode persistent;
create queue invoices kind basic mode persistent;
create queue echoQueue kind echo mode persistent;
create queue crmErrors kind basic mode persistent;
create queue postalService kind basic mode persistent;

create property requestID as xs:string fixed
    queue crm, customer value //requestID;
create slicing requestMsgs on requestID;

create property messageRequestID as xs:string fixed
    queue invoices, finance value //requestID;
create slicing invoiceRetention on messageRequestID;

(: Example 3.1 / Fig. 5 — fork the three checks :)
create rule newOfferRequest for crm
    if (//offerRequest) then
        let $customerInfo :=
            <requestCustomerInfo>
                {//requestID} {//customerID}
            </requestCustomerInfo>
        let $exportRestrictionsInfo :=
            <requestRestrictionsInfo>
                {//requestID} {//items}
            </requestRestrictionsInfo>
        let $plantCapacityInfo :=
            <requestCapacityInfo>
                {//requestID} {//items}
            </requestCapacityInfo>
        return (
            do enqueue $customerInfo into finance,
            do enqueue $exportRestrictionsInfo into legal,
            do enqueue $plantCapacityInfo into supplier
                with Sender value "http://ws.chem.invalid/"
        );

(: Example 3.2 / Fig. 6 — credit rating from the invoices queue :)
create rule checkCreditRating for finance
    if (//requestCustomerInfo) then
        let $result :=
            <customerInfoResult>{//requestID}{//customerID}
                {let $invoices := qs:queue("invoices")
                 return
                    if ($invoices[//customerID = qs:message()//customerID])
                    then <refuse/> (: unpaid bills! :)
                    else <accept/>}
            </customerInfoResult>
        return do enqueue $result into crm;

(: stand-ins for the remote legal / supplier parties of Fig. 4 :)
create rule checkRestrictions for legal
    if (//requestRestrictionsInfo) then
        do enqueue
            <restrictionsResult>{//requestID}
                {if (//item[@restricted = "true"])
                 then <restrictedItem/> else <clear/>}
            </restrictionsResult> into crm;

create rule checkCapacity for supplier
    if (//requestCapacityInfo) then
        do enqueue
            <capacityResult>{//requestID}<accept/></capacityResult>
            into crm;

(: Example 3.3 / Fig. 7 — join the parallel control flows.  The guard on
   offer/refusal is one of the paper's '...' elisions: without it the
   rule would fire a second time when the offer itself (which carries the
   requestID and therefore joins the slice) arrives. :)
create rule joinOrder for requestMsgs
    if (qs:slice()[//customerInfoResult] and
        qs:slice()[//restrictionsResult] and
        qs:slice()[//capacityResult] and
        not(qs:slice()[/offer]) and not(qs:slice()[/refusal])) then
        if (qs:slice()[//customerInfoResult//accept] and
            not(qs:slice()[//restrictionsResult//restrictedItem])
            and qs:slice()[//capacityResult//accept]) then
            let $offer := <offer><requestID>{string(qs:slicekey())}</requestID>
                          </offer>
            return do enqueue $offer into customer
        else (: problems :)
            do enqueue
                <refusal><requestID>{string(qs:slicekey())}</requestID>
                </refusal> into customer;

(: Fig. 8 — reset the request slice when an offer or refusal went out :)
create rule cleanupRequest for requestMsgs
    if (qs:slice()[/offer] or qs:slice()[/refusal]) then
        do reset;

(: Example 3.4 / Fig. 9 — payment reminder via an echo queue :)
create rule resetPayedInvoices for invoiceRetention
    if (qs:slice()[//timeoutNotification]
        and qs:slice()[/paymentConfirmation]) then
        do reset;

create rule checkPayment for finance
    if (//timeoutNotification) then
        let $mRID := string(qs:message()//requestID)
        let $payments := qs:queue()[/paymentConfirmation]
        return
            if (not($payments[//requestID = $mRID])) then
                let $invoice := qs:queue("invoices")[//requestID = $mRID]
                let $reminder := <reminder>{$invoice[1]//requestID}</reminder>
                return do enqueue $reminder into customer
            else ();

(: Example 3.5 / Fig. 10 — order confirmation with an error queue :)
create property orderID as xs:integer
    queue crm value //customerOrder/orderID;
create rule confirmOrder for crm errorqueue crmErrors
    if (//customerOrder) then (: send confirmation :)
        let $confirmation := <confirmation>
            {//orderID} (: additional details :)
        </confirmation>
        return do enqueue $confirmation into customer;

create rule deadLink for crmErrors
    if (/error/disconnectedTransport) then
        (: send confirmation via snail mail :)
        let $initialOrderID := /error/initialMessage//orderID
        let $request := <sendMessage>{$initialOrderID}</sendMessage>
        return do enqueue $request into postalService
"""


@pytest.fixture()
def server():
    return DemaqServer(PROCUREMENT)


def offer_request(request_id, customer_id, restricted=False):
    flag = ' restricted="true"' if restricted else ""
    return (f"<offerRequest><requestID>{request_id}</requestID>"
            f"<customerID>{customer_id}</customerID>"
            f"<items><item{flag}>acetone</item></items></offerRequest>")


def texts(server, queue):
    return server.queue_texts(queue)


def query(doc, expr):
    return evaluate_expression(expr, context_item=doc)


# -- Example 3.1: fork ---------------------------------------------------------------

def test_fig5_forks_three_checks(server):
    server.enqueue("crm", offer_request("r1", "c1"))
    # process just the offerRequest (one step is one message)
    server.step()
    assert len(server.queue_documents("finance")) == 1
    assert len(server.queue_documents("legal")) == 1
    assert len(server.queue_documents("supplier")) == 1
    supplier_msg = server.live_messages("supplier")[0]
    assert supplier_msg.property("Sender") == "http://ws.chem.invalid/"


def test_fig5_messages_carry_correlation_ids(server):
    server.enqueue("crm", offer_request("r1", "c1"))
    server.step()
    for queue in ("finance", "legal", "supplier"):
        doc = server.queue_documents(queue)[0]
        assert query(doc, "string(//requestID)") == ["r1"]


# -- Example 3.2: queue access -------------------------------------------------------

def test_fig6_accepts_without_unpaid_bills(server):
    server.enqueue("crm", offer_request("r1", "clean-customer"))
    server.run_until_idle()
    results = [d for d in server.queue_documents("crm")
               if d.root_element.name.local_name == "customerInfoResult"]
    assert len(results) == 1
    assert query(results[0], "exists(//accept)") == [True]


def test_fig6_refuses_with_unpaid_bills(server):
    server.enqueue("invoices",
                   "<invoice><requestID>old</requestID>"
                   "<customerID>debtor</customerID></invoice>")
    server.run_until_idle()
    server.enqueue("crm", offer_request("r2", "debtor"))
    server.run_until_idle()
    results = [d for d in server.queue_documents("crm")
               if d.root_element.name.local_name == "customerInfoResult"]
    assert query(results[0], "exists(//refuse)") == [True]


# -- Example 3.3: join --------------------------------------------------------------

def test_fig7_join_produces_offer(server):
    server.enqueue("crm", offer_request("r1", "good"))
    server.run_until_idle()
    offers = [t for t in texts(server, "customer") if "offer" in t]
    assert offers == ["<offer><requestID>r1</requestID></offer>"]


def test_fig7_refusal_on_restricted_items(server):
    server.enqueue("crm", offer_request("r3", "good", restricted=True))
    server.run_until_idle()
    refusals = [t for t in texts(server, "customer") if "refusal" in t]
    assert refusals == ["<refusal><requestID>r3</requestID></refusal>"]


def test_fig7_refusal_on_bad_credit(server):
    server.enqueue("invoices",
                   "<invoice><requestID>x</requestID>"
                   "<customerID>debtor</customerID></invoice>")
    server.run_until_idle()
    server.enqueue("crm", offer_request("r4", "debtor"))
    server.run_until_idle()
    assert any("refusal" in t for t in texts(server, "customer"))
    assert not any("<offer" in t for t in texts(server, "customer"))


def test_fig7_requests_isolated_per_slice(server):
    server.enqueue("crm", offer_request("rA", "good"))
    server.enqueue("crm", offer_request("rB", "good"))
    server.run_until_idle()
    offers = sorted(t for t in texts(server, "customer") if "offer" in t)
    assert offers == [
        "<offer><requestID>rA</requestID></offer>",
        "<offer><requestID>rB</requestID></offer>"]


# -- Fig. 8: slice reset & retention ---------------------------------------------------

def test_fig8_slice_reset_after_offer(server):
    server.enqueue("crm", offer_request("r1", "good"))
    server.run_until_idle()
    assert server.store.slice_lifetime("requestMsgs", "r1") >= 1
    assert server.slice_live_messages("requestMsgs", "r1") == []


def test_fig8_gc_reclaims_request_messages(server):
    server.enqueue("crm", offer_request("r1", "good"))
    server.run_until_idle()
    before = server.store.message_count()
    collected = server.collect_garbage()
    assert collected > 0
    assert server.store.message_count() < before


# -- Example 3.4: reminder via echo queue ------------------------------------------------

def issue_invoice(server, request_id):
    server.enqueue("invoices",
                   f"<invoice><requestID>{request_id}</requestID>"
                   f"<customerID>c</customerID></invoice>")
    server.enqueue("echoQueue",
                   f"<timeoutNotification><requestID>{request_id}"
                   f"</requestID></timeoutNotification>",
                   properties={"timeout": 3600, "target": "finance"})
    server.run_until_idle()


def test_fig9_reminder_when_unpaid(server):
    issue_invoice(server, "inv-1")
    server.advance_time(3601)
    reminders = [t for t in texts(server, "customer") if "reminder" in t]
    assert reminders == ["<reminder><requestID>inv-1</requestID></reminder>"]


def test_fig9_no_reminder_when_paid(server):
    issue_invoice(server, "inv-2")
    server.enqueue("finance",
                   "<paymentConfirmation><requestID>inv-2</requestID>"
                   "</paymentConfirmation>")
    server.run_until_idle()
    server.advance_time(3601)
    assert [t for t in texts(server, "customer") if "reminder" in t] == []


def test_fig9_invoice_slice_reset_after_payment_and_timeout(server):
    issue_invoice(server, "inv-3")
    server.enqueue("finance",
                   "<paymentConfirmation><requestID>inv-3</requestID>"
                   "</paymentConfirmation>")
    server.run_until_idle()
    server.advance_time(3601)
    assert server.store.slice_lifetime("invoiceRetention", "inv-3") >= 1


def test_fig9_invoice_retained_until_timeout(server):
    issue_invoice(server, "inv-4")
    # invoice and (future) payment are retained while the timer runs
    assert server.collect_garbage() == 0 or \
        len(server.slice_live_messages("invoiceRetention", "inv-4")) > 0


# -- Example 3.5: error handling -----------------------------------------------------------

def test_fig10_confirmation_sent(server):
    server.enqueue("crm",
                   "<customerOrder><orderID>7</orderID></customerOrder>")
    server.run_until_idle()
    confirmations = [t for t in texts(server, "customer")
                     if "confirmation" in t]
    assert len(confirmations) == 1
    assert "<orderID>7</orderID>" in confirmations[0]


def test_fig10_dead_link_compensation(server):
    # inject the error message a failed transport would produce
    from repro.engine.errors import (DISCONNECTED, NETWORK,
                                     build_error_message)
    from repro.xmldm import parse
    initial = parse("<customerOrder><orderID>9</orderID></customerOrder>")
    error = build_error_message(NETWORK, "endpoint unreachable",
                                queue="customer", marker=DISCONNECTED,
                                initial_message=initial)
    txn = server.store.begin()
    server.executor.enqueue_in_txn(txn, "crmErrors", error)
    server.store.commit(txn)
    server.locking.release(txn.txn_id)
    server.after_commit(txn)
    server.run_until_idle()
    mails = texts(server, "postalService")
    assert mails == ["<sendMessage><orderID>9</orderID></sendMessage>"]


# -- whole-scenario sanity ---------------------------------------------------------------------

def test_full_scenario_is_quiescent_and_consistent(server):
    for index in range(5):
        server.enqueue("crm", offer_request(f"req-{index}", "good"))
    server.enqueue("crm",
                   "<customerOrder><orderID>1</orderID></customerOrder>")
    issue_invoice(server, "inv-9")
    server.advance_time(4000)
    server.run_until_idle()
    assert server.scheduler.backlog() == 0
    assert server.unhandled_errors == []
    offers = [t for t in texts(server, "customer") if "offer" in t]
    assert len(offers) == 5
