"""Tests for the simulated transport, SOAP envelopes, and WSDL-lite."""

import pytest

from repro.engine.errors import EngineError
from repro.network import (EndpointCollisionError, Network, WSDLError,
                           build_envelope, build_wsdl, node_endpoint,
                           parse_envelope, parse_wsdl)
from repro.queues import VirtualClock
from repro.xmldm import parse, serialize


# -- SOAP envelopes ---------------------------------------------------------------

def test_envelope_round_trip():
    body = parse("<order><id>7</id></order>")
    envelope = build_envelope(body, {"Sender": "demaq://a", "retries": 3,
                                     "urgent": True})
    unwrapped, properties = parse_envelope(envelope)
    assert serialize(unwrapped) == "<order><id>7</id></order>"
    assert properties == {"Sender": "demaq://a", "retries": 3,
                          "urgent": True}


def test_envelope_empty_properties():
    body = parse("<m/>")
    unwrapped, properties = parse_envelope(build_envelope(body, {}))
    assert properties == {}
    assert unwrapped.root_element.name.local_name == "m"


def test_envelope_rejects_garbage():
    with pytest.raises(ValueError):
        parse_envelope(parse("<notanenvelope/>"))


# -- WSDL-lite ------------------------------------------------------------------------

WSDL = """
<definitions name="supplier">
  <port name="CapacityRequestPort" address="demaq://supplier/requests">
    <operation name="checkCapacity" input="plantCapacityInfo"/>
    <operation name="reserve" input="reservation"/>
  </port>
</definitions>
"""


def test_wsdl_parse_and_lookup():
    interface = parse_wsdl(WSDL)
    port = interface.port("CapacityRequestPort")
    assert port.address == "demaq://supplier/requests"
    assert port.accepts("plantCapacityInfo")
    assert port.accepts("reservation")
    assert not port.accepts("other")


def test_wsdl_unknown_port():
    with pytest.raises(WSDLError, match="no port"):
        parse_wsdl(WSDL).port("Nope")


@pytest.mark.parametrize("bad", [
    "<x/>",
    "<definitions name='d'/>",
    "<definitions><port name='p'/></definitions>",
    ("<definitions><port name='p' address='a'>"
     "<operation name='o'/></port></definitions>"),
])
def test_wsdl_malformed(bad):
    with pytest.raises(WSDLError):
        parse_wsdl(bad)


def test_build_wsdl_round_trips_through_parse():
    from repro import compile_application
    app = compile_application("""
    create queue orders kind basic mode persistent;
    create queue inbox kind incomingGateway mode persistent
        endpoint "demaq://node/inbox";
    create queue notify kind outgoingGateway mode transient
        endpoint "demaq://remote/notify";
    create rule r for orders if (//x) then do enqueue <y/> into notify
    """)
    interface = parse_wsdl(build_wsdl(app, "http://127.0.0.1:8080/"))
    # enqueueable queues become ports; the runtime-fed one does not
    assert sorted(interface.ports) == ["inboxPort", "ordersPort"]
    assert interface.port("ordersPort").address == \
        "http://127.0.0.1:8080/enqueue/orders"


# -- transport --------------------------------------------------------------------------

def make_network(latency=0.0, **kwargs):
    clock = VirtualClock()
    return clock, Network(clock, latency=latency, **kwargs)


def test_delivery_to_registered_endpoint():
    clock, network = make_network()
    received = []
    network.register("demaq://b/in", lambda env, src: received.append(src))
    network.send("demaq://b/in", parse("<m/>"), source="demaq://a")
    assert received == []       # not before pump
    network.pump()
    assert received == ["demaq://a"]
    assert network.delivered == 1


def test_latency_delays_delivery():
    clock, network = make_network(latency=5.0)
    received = []
    network.register("e", lambda env, src: received.append(1))
    network.send("e", parse("<m/>"))
    network.pump()
    assert received == []
    clock.advance(5)
    network.pump()
    assert received == [1]


def test_unknown_endpoint_fails_with_disconnected():
    _, network = make_network()
    failures = []
    network.send("nowhere", parse("<m/>"), on_failed=failures.append)
    network.pump()
    assert failures == ["disconnectedTransport"]


def test_down_endpoint_fails_and_recovers():
    _, network = make_network()
    outcomes = []
    network.register("e", lambda env, src: outcomes.append("ok"))
    network.set_down("e")
    network.send("e", parse("<m/>"), on_failed=outcomes.append)
    network.pump()
    network.set_down("e", down=False)
    network.send("e", parse("<m/>"),
                 on_delivered=lambda: outcomes.append("ack"))
    network.pump()
    assert outcomes == ["disconnectedTransport", "ok", "ack"]


def test_fail_next_injects_failures():
    _, network = make_network()
    outcomes = []
    network.register("e", lambda env, src: outcomes.append("ok"))
    network.fail_next("e", 2)
    for _ in range(3):
        network.send("e", parse("<m/>"), on_failed=outcomes.append)
        network.pump()
    assert outcomes == ["deliveryTimeout", "deliveryTimeout", "ok"]


def test_drop_rate_is_deterministic_per_seed():
    def run(seed):
        _, network = make_network(drop_rate=0.5)
        network._random.seed(seed)
        network.register("e", lambda env, src: None)
        results = []
        for _ in range(20):
            network.send("e", parse("<m/>"),
                         on_delivered=lambda: results.append("d"),
                         on_failed=lambda m: results.append("f"))
        network.pump()
        return results

    assert run(3) == run(3)
    assert "f" in run(3) and "d" in run(3)


def test_duplicate_registration_rejected():
    _, network = make_network()
    network.register("e", lambda env, src: None)
    with pytest.raises(EndpointCollisionError, match="exactly one handler"):
        network.register("e", lambda env, src: None)


def test_collision_with_shard_ingest_names_reserved_namespace():
    _, network = make_network()
    ingest = node_endpoint("node0", "orders")
    network.register(ingest, lambda env, src: None)
    with pytest.raises(EndpointCollisionError, match="reserved"):
        network.register(ingest, lambda env, src: None)


def test_gateway_endpoint_may_not_claim_reserved_namespace():
    from repro import DemaqServer
    clock = VirtualClock()
    network = Network(clock)
    source = """
    create queue inbox kind incomingGateway mode persistent
        endpoint "demaq://node0/!shard/orders";
    create queue done kind basic mode persistent;
    create rule handle for inbox
        if (//job) then do enqueue <ack/> into done
    """
    with pytest.raises(EngineError, match="reserved"):
        DemaqServer(source, clock=clock, network=network)
    # ...and the cluster-ingest address stayed unclaimed
    assert not network.is_registered("demaq://node0/!shard/orders")


def test_in_order_delivery_same_due_time():
    _, network = make_network()
    received = []
    network.register("e", lambda env, src:
                     received.append(env.root_element.name.local_name))
    network.send("e", parse("<first/>"))
    network.send("e", parse("<second/>"))
    network.pump()
    assert received == ["first", "second"]
