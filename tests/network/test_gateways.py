"""Two-node gateway tests: sending, receiving, reliability, failures."""

import pytest

from repro import DemaqServer, Network, run_cluster
from repro.queues import VirtualClock

SENDER = """
create queue work kind basic mode persistent;
create queue toRemote kind outgoingGateway mode persistent
    endpoint "demaq://remote/inbox";
create queue netErrors kind basic mode persistent;
create errorqueue netErrors;
create rule fwd for work
    if (//job) then do enqueue <job id="{string(//job/@id)}"/> into toRemote
        with Sender value "demaq://local"
"""

RECEIVER = """
create queue inbox kind incomingGateway mode persistent
    endpoint "demaq://remote/inbox";
create queue done kind basic mode persistent;
create rule handle for inbox
    if (//job) then do enqueue <ack id="{string(//job/@id)}"/> into done
"""


def make_pair(**net_kwargs):
    clock = VirtualClock()
    network = Network(clock, **net_kwargs)
    sender = DemaqServer(SENDER, clock=clock, network=network, name="local")
    receiver = DemaqServer(RECEIVER, clock=clock, network=network,
                           name="remote")
    return clock, network, sender, receiver


def test_message_flows_between_nodes():
    _, _, sender, receiver = make_pair()
    sender.enqueue("work", '<job id="7"/>')
    run_cluster([sender, receiver])
    assert receiver.queue_texts("done") == ['<ack id="7"/>']


def test_gateway_message_marked_processed_after_send():
    _, _, sender, receiver = make_pair()
    sender.enqueue("work", '<job id="7"/>')
    run_cluster([sender, receiver])
    gateway_msg = sender.live_messages("toRemote")[0]
    assert gateway_msg.processed


def test_sender_property_arrives_at_remote():
    _, _, sender, receiver = make_pair()
    sender.enqueue("work", '<job id="7"/>')
    run_cluster([sender, receiver])
    incoming = receiver.live_messages("inbox")[0]
    # the transport stamps the actual source endpoint
    assert incoming.property("Sender") == "demaq://local"


def test_network_failure_produces_error_message():
    _, network, sender, receiver = make_pair()
    network.set_down("demaq://remote/inbox")
    sender.enqueue("work", '<job id="9"/>')
    run_cluster([sender, receiver])
    errors = sender.queue_documents("netErrors")
    assert len(errors) == 1
    root = errors[0].root_element
    assert root.first_child("networkError") is not None
    assert root.first_child("disconnectedTransport") is not None
    # Fig. 10 pattern: the error carries the initial message
    assert root.first_child("initialMessage") is not None


def test_error_handling_rule_compensates():
    # the deadLink rule of Fig. 10, adapted to the simulated topology
    source = SENDER + """
        ;
        create queue postalService kind basic mode persistent;
        create rule deadLink for netErrors
            if (/error/disconnectedTransport) then
                do enqueue <sendMail>{/error/initialMessage//job}</sendMail>
                    into postalService
    """
    clock = VirtualClock()
    network = Network(clock)
    sender = DemaqServer(source, clock=clock, network=network, name="local")
    network.set_down("demaq://remote/inbox")
    sender.enqueue("work", '<job id="11"/>')
    sender.run_until_idle()
    mails = sender.queue_texts("postalService")
    assert mails == ['<sendMail><job id="11"/></sendMail>']


def test_reliable_messaging_retries_until_success():
    source = SENDER.replace(
        'endpoint "demaq://remote/inbox"',
        'endpoint "demaq://remote/inbox"\n'
        '    using WS-ReliableMessaging policy wsrmpol.xml')
    clock = VirtualClock()
    network = Network(clock)
    sender = DemaqServer(source, clock=clock, network=network, name="local")
    receiver = DemaqServer(RECEIVER, clock=clock, network=network,
                           name="remote")
    network.fail_next("demaq://remote/inbox", 3)   # three transient failures
    sender.enqueue("work", '<job id="5"/>')
    run_cluster([sender, receiver])
    assert receiver.queue_texts("done") == ['<ack id="5"/>']
    assert sender.queue_documents("netErrors") == []
    assert network.failed == 3


def test_reliable_messaging_gives_up_after_max_attempts():
    source = SENDER.replace(
        'endpoint "demaq://remote/inbox"',
        'endpoint "demaq://remote/inbox"\n'
        '    using WS-ReliableMessaging policy wsrmpol.xml')
    clock = VirtualClock()
    network = Network(clock)
    sender = DemaqServer(source, clock=clock, network=network, name="local")
    network.set_down("demaq://remote/inbox")
    sender.enqueue("work", '<job id="5"/>')
    sender.run_until_idle()
    assert len(sender.queue_documents("netErrors")) == 1


def test_no_network_configured_is_disconnected():
    sender = DemaqServer(SENDER, name="local")    # no network
    sender.enqueue("work", '<job id="1"/>')
    sender.run_until_idle()
    errors = sender.queue_documents("netErrors")
    assert len(errors) == 1


def test_unsent_gateway_messages_resent_after_crash(tmp_path):
    clock = VirtualClock()
    network = Network(clock)
    sender = DemaqServer(SENDER, clock=clock, network=network, name="local",
                         data_dir=str(tmp_path / "sender"))
    receiver = DemaqServer(RECEIVER, clock=clock, network=network,
                           name="remote")
    network.set_down("demaq://remote/inbox")
    sender.enqueue("work", '<job id="3"/>')
    # rule fires, send fails... but crash before the error round-trip:
    sender.scheduler.next_message()  # drop scheduling state on purpose
    sender.crash_and_recover()
    network.set_down("demaq://remote/inbox", down=False)
    run_cluster([sender, receiver])
    assert receiver.queue_texts("done") == ['<ack id="3"/>']
    sender.close()


def test_latency_delays_remote_processing():
    clock = VirtualClock()
    network = Network(clock, latency=10.0)
    sender = DemaqServer(SENDER, clock=clock, network=network, name="local")
    receiver = DemaqServer(RECEIVER, clock=clock, network=network,
                           name="remote")
    sender.enqueue("work", '<job id="2"/>')
    sender.run_until_idle()
    receiver.run_until_idle()
    assert receiver.queue_texts("done") == []
    clock.advance(10)
    run_cluster([sender, receiver])
    assert receiver.queue_texts("done") == ['<ack id="2"/>']


def test_wsdl_interface_resolves_endpoint_and_validates():
    wsdl = """
    <definitions name="remoteSvc">
      <port name="JobPort" address="demaq://remote/inbox">
        <operation name="submit" input="job"/>
      </port>
    </definitions>
    """
    source = SENDER.replace(
        'endpoint "demaq://remote/inbox"',
        "interface remote.wsdl port JobPort")
    clock = VirtualClock()
    network = Network(clock)
    sender = DemaqServer(source, clock=clock, network=network, name="local")
    sender.register_wsdl("remote.wsdl", wsdl)
    receiver = DemaqServer(RECEIVER, clock=clock, network=network,
                           name="remote")
    sender.enqueue("work", '<job id="8"/>')
    run_cluster([sender, receiver])
    assert receiver.queue_texts("done") == ['<ack id="8"/>']


def test_wsdl_rejects_undeclared_operation():
    wsdl = """
    <definitions name="remoteSvc">
      <port name="JobPort" address="demaq://remote/inbox">
        <operation name="submit" input="somethingElse"/>
      </port>
    </definitions>
    """
    source = SENDER.replace(
        'endpoint "demaq://remote/inbox"',
        "interface remote.wsdl port JobPort")
    clock = VirtualClock()
    network = Network(clock)
    sender = DemaqServer(source, clock=clock, network=network, name="local")
    sender.register_wsdl("remote.wsdl", wsdl)
    sender.enqueue("work", '<job id="8"/>')
    sender.run_until_idle()
    errors = sender.queue_documents("netErrors")
    assert len(errors) == 1
    assert "matches no operation" in errors[0].root_element.first_child(
        "description").text
