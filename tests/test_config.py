"""The typed runtime-config registry: parsing, precedence, anti-drift.

Two structural guarantees live here: the README's environment-switch
table is generated from the registry (so the docs cannot drift from the
code), and no library module reads ``DEMAQ_*`` from the environment
directly (so ``RuntimeConfig`` stays the single parse source — the
bench/test harness gates are the only sanctioned exceptions).
"""

import os

import pytest

from repro.config import (ConfigError, RuntimeConfig, active, env_var,
                          install, read_field)


@pytest.fixture(autouse=True)
def no_installed_config():
    install(None)
    yield
    install(None)


# -- parsing ---------------------------------------------------------------------


def test_defaults():
    config = RuntimeConfig.from_env(environ={})
    assert config.mvcc is True
    assert config.durability == ""
    assert config.batch_size == 1
    assert config.lock_timeout == 10.0
    assert config.checkpoint_interval_bytes == 0
    assert config.wal_ceiling_bytes == 0
    assert config.wal_truncate is True


def test_parses_every_field_kind():
    config = RuntimeConfig.from_env(environ={
        "DEMAQ_MVCC": "0",
        "DEMAQ_DURABILITY": "group",
        "DEMAQ_BATCH_SIZE": "8",
        "DEMAQ_LOCK_TIMEOUT": "2.5",
        "DEMAQ_CHECKPOINT_BYTES": "65536",
        "DEMAQ_WAL_CEILING_BYTES": "1048576",
        "DEMAQ_WAL_TRUNCATE": "off"})
    assert config.mvcc is False
    assert config.durability == "group"
    assert config.batch_size == 8
    assert config.lock_timeout == 2.5
    assert config.checkpoint_interval_bytes == 65536
    assert config.wal_ceiling_bytes == 1048576
    assert config.wal_truncate is False


def test_empty_string_means_unset():
    config = RuntimeConfig.from_env(environ={"DEMAQ_BATCH_SIZE": ""})
    assert config.batch_size == 1


@pytest.mark.parametrize("env, value", [
    ("DEMAQ_BATCH_SIZE", "nope"),
    ("DEMAQ_BATCH_SIZE", "0"),
    ("DEMAQ_DURABILITY", "paranoid"),
    ("DEMAQ_XQUERY_BACKEND", "llvm"),
    ("DEMAQ_LOCK_TIMEOUT", "-1"),
    ("DEMAQ_CHECKPOINT_BYTES", "-5"),
    ("DEMAQ_REPLICA_COUNT", "-1"),
])
def test_invalid_values_raise(env, value):
    with pytest.raises(ConfigError):
        RuntimeConfig.from_env(environ={env: value})


def test_json_round_trip():
    config = RuntimeConfig.from_env(environ={
        "DEMAQ_DURABILITY": "async", "DEMAQ_WAL_CEILING_BYTES": "4096"})
    clone = RuntimeConfig.from_json(config.to_json())
    assert clone == config


def test_from_json_rejects_unknown_fields():
    with pytest.raises(ConfigError):
        RuntimeConfig.from_json({"warp_drive": True})


def test_constructor_validates_types():
    with pytest.raises(ConfigError):
        RuntimeConfig(batch_size="8")


# -- precedence ------------------------------------------------------------------


def test_installed_config_beats_the_environment(monkeypatch):
    monkeypatch.setenv("DEMAQ_BATCH_SIZE", "3")
    assert read_field("batch_size") == 3
    install(RuntimeConfig(batch_size=16))
    assert read_field("batch_size") == 16
    assert active().batch_size == 16
    install(None)
    assert read_field("batch_size") == 3


def test_read_field_is_monkeypatch_friendly(monkeypatch):
    assert read_field("wal_ceiling_bytes") == 0
    monkeypatch.setenv("DEMAQ_WAL_CEILING_BYTES", "2048")
    assert read_field("wal_ceiling_bytes") == 2048


def test_env_var_mapping():
    assert env_var("checkpoint_interval_bytes") == "DEMAQ_CHECKPOINT_BYTES"
    assert env_var("mvcc") == "DEMAQ_MVCC"


# -- anti-drift ------------------------------------------------------------------


def _repo_root():
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def test_readme_table_matches_the_registry():
    with open(os.path.join(_repo_root(), "README.md"),
              encoding="utf-8") as fh:
        readme = fh.read()
    assert RuntimeConfig.render_env_table() in readme, \
        "README env-switch table drifted: regenerate it with " \
        "RuntimeConfig.render_env_table()"


#: Files allowed to read DEMAQ_* directly: the registry itself, and the
#: bench/test harness gates that must work before repro is importable.
_ENV_READ_ALLOWED = {
    os.path.join("src", "repro", "config.py"),
    os.path.join("benchmarks", "conftest.py"),
    os.path.join("tests", "netio", "conftest.py"),
    os.path.join("tests", "test_config.py"),      # the needles below
}


def test_no_direct_demaq_env_reads_outside_the_registry():
    root = _repo_root()
    offenders = []
    for top in ("src", "benchmarks", "tests", "examples"):
        for dirpath, _, filenames in os.walk(os.path.join(root, top)):
            for filename in filenames:
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                relative = os.path.relpath(path, root)
                if relative in _ENV_READ_ALLOWED:
                    continue
                with open(path, encoding="utf-8") as fh:
                    source = fh.read()
                if 'os.environ.get("DEMAQ_' in source \
                        or "os.environ.get('DEMAQ_" in source \
                        or 'os.getenv("DEMAQ_' in source:
                    offenders.append(relative)
    assert not offenders, \
        f"direct DEMAQ_* environment reads outside repro.config: {offenders}"
