"""Multiversion reads (MVCC) at the store layer.

Version visibility, the snapshot horizon, version GC, slice lifetimes
as of a snapshot, and the recovery of versioned index state — the
storage half of the lock-free scan/correlation path.
"""

import pytest

from repro.storage import MessageStore, StorageError


def enqueue(store, queue, body, properties=None, slices=(),
            persistent=True):
    txn = store.begin()
    op = txn.insert_message(queue, body.encode(), properties or {},
                            list(slices), persistent)
    store.commit(txn)
    return op.msg_id


def delete(store, msg_id):
    txn = store.begin()
    txn.delete_message(msg_id)
    store.commit(txn)


# -- visibility ----------------------------------------------------------------

def test_snapshot_does_not_see_later_inserts():
    store = MessageStore(mvcc=True)
    first = enqueue(store, "q", "<m>1</m>")
    with store.read_snapshot() as snap:
        second = enqueue(store, "q", "<m>2</m>")
        at_snap = [m.msg_id for m in store.queue_messages("q",
                                                          snapshot=snap)]
        assert at_snap == [first]
        assert store.get(second, snapshot=snap) is None
        assert store.queue_depth("q", snapshot=snap) == 1
    # current-state read sees both
    assert [m.msg_id for m in store.queue_messages("q")] == [first, second]


def test_snapshot_still_sees_deleted_version():
    store = MessageStore(mvcc=True)
    msg = enqueue(store, "q", "<m/>")
    with store.read_snapshot() as snap:
        delete(store, msg)
        # current readers: gone.  The snapshot: still there.
        assert store.get(msg) is None
        assert store.queue_depth("q") == 0
        assert store.get(msg, snapshot=snap) is not None
        assert [m.msg_id
                for m in store.queue_messages("q", snapshot=snap)] == [msg]
        # the version is pinned against purge while the snapshot lives
        assert store.stats.purged_versions == 0
        assert store.body_bytes(msg) == b"<m/>"
    # snapshot released: the dead version is below the horizon
    assert store.purge_dead_versions() == 1
    assert store.stats.purged_versions == 1
    with pytest.raises(StorageError):
        store.body_bytes(msg)


def test_commit_purges_dead_versions_when_unpinned():
    """With no active snapshot the commit path reclaims versions
    immediately — the net state is identical to 2PL's in-place delete."""
    store = MessageStore(mvcc=True)
    msg = enqueue(store, "q", "<m/>")
    delete(store, msg)
    assert store.stats.purged_versions == 1
    assert store.get(msg) is None
    with pytest.raises(StorageError):
        store.body_bytes(msg)
    assert store.message_count() == 0
    assert store.queue_messages("q") == []


def test_message_count_excludes_pinned_dead_versions():
    store = MessageStore(mvcc=True)
    keep = enqueue(store, "q", "<keep/>")
    doomed = enqueue(store, "q", "<dead/>")
    with store.read_snapshot():
        delete(store, doomed)
        assert store.message_count() == 1
        assert [m.msg_id for m in store.unprocessed_messages()] == [keep]


def test_snapshot_horizon_is_minimum_active_snapshot():
    store = MessageStore(mvcc=True)
    enqueue(store, "q", "<m/>")
    low = store.acquire_snapshot("reader-low")
    enqueue(store, "q", "<m/>")
    high = store.acquire_snapshot("reader-high")
    assert low < high
    assert store.snapshot_horizon() == low
    store.release_snapshot("reader-low")
    assert store.snapshot_horizon() == high
    store.release_snapshot("reader-high")
    assert store.snapshot_horizon() == store.visible_lsn()


def test_transaction_snapshot_is_acquired_at_begin_and_released():
    store = MessageStore(mvcc=True)
    enqueue(store, "q", "<m/>")
    txn = store.begin()
    assert txn.snapshot_lsn == store.visible_lsn()
    assert store.snapshot_horizon() == txn.snapshot_lsn
    concurrent = enqueue(store, "q", "<m/>")
    assert store.get(concurrent, snapshot=txn.snapshot_lsn) is None
    store.commit(txn)
    assert store.snapshot_horizon() == store.visible_lsn()
    aborted = store.begin()
    store.abort(aborted)
    assert store.snapshot_horizon() == store.visible_lsn()


def test_commit_span_becomes_visible_atomically():
    """A multi-op transaction shares one version LSN: a snapshot sees
    the whole span or none of it."""
    store = MessageStore(mvcc=True)
    txn = store.begin()
    op_a = txn.insert_message("q", b"<a/>", {}, [])
    op_b = txn.insert_message("q", b"<b/>", {}, [])
    store.commit(txn)
    a, b = op_a.msg_id, op_b.msg_id
    assert store.get(a).created_lsn == store.get(b).created_lsn
    with store.read_snapshot() as snap:
        assert [m.msg_id for m in store.queue_messages("q",
                                                       snapshot=snap)] \
            == [a, b]


# -- slices and properties at a snapshot ---------------------------------------

def test_slice_reset_is_invisible_to_older_snapshots():
    store = MessageStore(mvcc=True)
    old = enqueue(store, "q", "<old/>", slices=[("s", "k")])
    with store.read_snapshot() as snap:
        txn = store.begin()
        txn.reset_slice("s", "k")
        store.commit(txn)
        new = enqueue(store, "q", "<new/>", slices=[("s", "k")])
        # current readers are in the new lifetime
        assert [m.msg_id for m in store.slice_messages("s", "k")] == [new]
        # the snapshot still reads the pre-reset lifetime
        assert [m.msg_id
                for m in store.slice_messages("s", "k",
                                              snapshot=snap)] == [old]
        assert [m.msg_id
                for m in store.slice_messages_scan("s", "k",
                                                   snapshot=snap)] == [old]


def test_snapshot_taken_after_reset_reads_new_lifetime():
    store = MessageStore(mvcc=True)
    enqueue(store, "q", "<old/>", slices=[("s", "k")])
    txn = store.begin()
    txn.reset_slice("s", "k")
    store.commit(txn)
    new = enqueue(store, "q", "<new/>", slices=[("s", "k")])
    with store.read_snapshot() as snap:
        assert [m.msg_id
                for m in store.slice_messages("s", "k",
                                              snapshot=snap)] == [new]


def test_property_index_respects_snapshots():
    store = MessageStore(mvcc=True)
    store.create_property_index("q", "key")
    first = enqueue(store, "q", "<m/>", {"key": "a"})
    with store.read_snapshot() as snap:
        second = enqueue(store, "q", "<m/>", {"key": "a"})
        for lookup in (store.property_lookup, store.property_lookup_scan):
            assert [m.msg_id
                    for m in lookup("q", "key", "a",
                                    snapshot=snap)] == [first]
            assert [m.msg_id
                    for m in lookup("q", "key", "a")] == [first, second]


def test_export_reads_a_consistent_snapshot():
    store = MessageStore(mvcc=True)
    ids = [enqueue(store, "q", f"<m>{i}</m>") for i in range(3)]
    exported = [(meta.msg_id, payload)
                for meta, payload in store.export_queue_messages("q")]
    assert [msg_id for msg_id, _ in exported] == ids
    assert exported[0][1] == b"<m>0</m>"


# -- mode resolution -----------------------------------------------------------

def test_mvcc_env_flag_resolution(monkeypatch):
    monkeypatch.delenv("DEMAQ_MVCC", raising=False)
    assert MessageStore().mvcc is True
    for raw in ("0", "false", "no", "off"):
        monkeypatch.setenv("DEMAQ_MVCC", raw)
        assert MessageStore().mvcc is False
    monkeypatch.setenv("DEMAQ_MVCC", "1")
    assert MessageStore().mvcc is True
    # the explicit argument wins over the environment
    assert MessageStore(mvcc=False).mvcc is False


def test_without_mvcc_deletes_are_physical():
    store = MessageStore(mvcc=False)
    msg = enqueue(store, "q", "<m/>")
    token = store.acquire_snapshot("reader")
    delete(store, msg)
    # no version survives for the snapshot: 2PL semantics
    assert store.get(msg, snapshot=token) is None
    assert store.stats.purged_versions == 0
    store.release_snapshot("reader")


# -- recovery of versioned state -----------------------------------------------

def test_recovery_replays_versioned_index_records(tmp_path):
    store = MessageStore(str(tmp_path / "d"), mvcc=True)
    keep = enqueue(store, "q", "<keep/>", slices=[("s", "k")])
    doomed = enqueue(store, "q", "<dead/>")
    txn = store.begin()
    txn.reset_slice("s", "k")
    store.commit(txn)
    fresh = enqueue(store, "q", "<fresh/>", slices=[("s", "k")])
    delete(store, doomed)

    store.simulate_crash()
    store.recover()
    # versions and lifetimes replayed from record LSNs; no snapshot
    # survives a restart, so dead versions are purged outright
    assert store.get(doomed) is None
    assert store.get(keep) is not None
    assert [m.msg_id for m in store.slice_messages("s", "k")] == [fresh]
    assert store.slice_lifetime("s", "k") == 1
    assert store.queue_depth("q") == 2
    # a fresh snapshot starts past everything replayed
    assert store.visible_lsn() >= store.wal.end_lsn()
    with store.read_snapshot() as snap:
        assert store.get(keep, snapshot=snap) is not None
    store.close()


def test_power_cut_truncates_to_a_consistent_version_boundary(tmp_path):
    """Losing the unflushed WAL tail (simulated power cut) must leave
    replayed versions consistent — the torn tail simply never happened."""
    store = MessageStore(str(tmp_path / "d"), mvcc=True,
                         durability="async")
    durable = enqueue(store, "q", "<durable/>")
    store.wal.flush()
    torn = enqueue(store, "q", "<torn/>")

    store.simulate_crash(lose_unflushed=True)
    store.recover()
    assert store.get(durable) is not None
    assert store.get(torn) is None
    assert [m.msg_id for m in store.queue_messages("q")] == [durable]
    # writes keep working after the truncated replay
    after = enqueue(store, "q", "<after/>")
    assert store.get(after).created_lsn > store.get(durable).created_lsn
    store.close()


def test_checkpoint_carries_pinned_dead_versions(tmp_path):
    store = MessageStore(str(tmp_path / "d"), mvcc=True)
    keep = enqueue(store, "q", "<keep/>")
    doomed = enqueue(store, "q", "<dead/>")
    token = store.acquire_snapshot("reader")
    delete(store, doomed)
    assert store.get(doomed, snapshot=token) is not None
    store.checkpoint()
    # the pinned version survived the checkpoint purge
    assert store.get(doomed, snapshot=token) is not None

    store.simulate_crash()
    store.recover()
    # restart drops all snapshots: the dead version is reclaimed
    assert store.get(doomed) is None
    assert store.get(keep) is not None
    assert store.message_count() == 1
    store.close()


def test_collect_garbage_respects_the_horizon():
    store = MessageStore(mvcc=True)
    msg = enqueue(store, "q", "<m/>", slices=[("s", "k")])
    txn = store.begin()
    txn.mark_processed(msg)
    txn.reset_slice("s", "k")
    store.commit(txn)
    with store.read_snapshot() as snap:
        assert store.collect_garbage() == 1
        # retention decided; the snapshot still reads the version
        assert store.get(msg, snapshot=snap) is not None
        assert store.get(msg) is None
    assert store.purge_dead_versions() == 1
    assert store.get(msg, snapshot=snap) is None
