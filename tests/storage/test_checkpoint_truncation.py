"""Fuzzy checkpoints, WAL truncation, and the checkpoint scheduler.

The endurance loop (DESIGN.md §10): checkpoints bound what recovery
replays, truncation bounds what the log retains, and the scheduler
drives both off byte/clock/ceiling triggers.  The truncation horizon is
``min(checkpoint wal_end, snapshot horizon, replica ack)``; each clause
gets its own test here, plus the force mode that drops the replica
clause when the WAL ceiling is breached.
"""

import pytest

from repro.storage import (CheckpointScheduler, MessageStore, WALError,
                           WriteAheadLog)
from repro.storage import wal as walmod
from repro.storage.buffer import BufferManager
from repro.storage.disk import InMemoryDiskManager
from repro.storage.heap import RecordHeap


def enqueue(store, queue, body, properties=None, slices=()):
    txn = store.begin()
    op = txn.insert_message(queue, body.encode(), properties or {},
                            list(slices))
    store.commit(txn)
    return op.msg_id


def delete(store, msg_id):
    txn = store.begin()
    txn.delete_message(msg_id)
    store.commit(txn)


class _StubShipper:
    """A shipper whose only job is to report a replica ack horizon."""

    def __init__(self, acked):
        self.acked = acked

    def min_acked(self):
        return self.acked


# -- WAL base offset -------------------------------------------------------------


def test_wal_truncate_prefix_keeps_absolute_lsns(tmp_path):
    wal = WriteAheadLog(str(tmp_path / "wal.log"))
    first = wal.append(walmod.MSG_INSERT, 1, msg_id=1)
    wal.append(walmod.COMMIT, 1)
    second = wal.append(walmod.MSG_INSERT, 2, msg_id=2)
    wal.append(walmod.COMMIT, 2)
    wal.flush()
    end = wal.end_lsn()

    dropped = wal.truncate_prefix(second)
    assert dropped == second - first
    assert wal.start_lsn() == second
    assert wal.end_lsn() == end                 # LSNs stay absolute
    assert [r.data["msg_id"] for r in wal.records()
            if r.type == walmod.MSG_INSERT] == [2]
    with pytest.raises(WALError):
        wal.read_bytes(0, second)
    wal.close()

    reopened = WriteAheadLog(str(tmp_path / "wal.log"))
    assert reopened.start_lsn() == second
    assert reopened.end_lsn() == end
    assert [r.data["msg_id"] for r in reopened.records()
            if r.type == walmod.MSG_INSERT] == [2]
    reopened.close()


# -- truncation horizon ----------------------------------------------------------


def test_truncate_without_checkpoint_is_a_noop(tmp_path):
    store = MessageStore(str(tmp_path / "s"))
    enqueue(store, "q", "<m/>")
    assert store.truncate_wal() == 0
    assert store.wal.start_lsn() == 0
    store.close()


def test_truncate_drops_prefix_below_checkpoint(tmp_path):
    store = MessageStore(str(tmp_path / "s"))
    for i in range(10):
        enqueue(store, "q", f"<m>{i}</m>")
    assert store.checkpoint() == "completed"
    wal_end = store.wal.last_checkpoint().data["wal_end"]
    horizon = min(wal_end, store.snapshot_horizon())
    dropped = store.truncate_wal()
    assert dropped == horizon > 0
    assert store.wal.start_lsn() == horizon
    assert store.stats.wal_truncations == 1
    assert store.stats.wal_truncated_bytes == dropped
    store.close()


def test_recovery_after_truncation_starts_at_checkpoint(tmp_path):
    store = MessageStore(str(tmp_path / "s"))
    ids = [enqueue(store, "q", f"<m>{i}</m>") for i in range(10)]
    store.checkpoint()
    store.truncate_wal()
    after = enqueue(store, "q", "<after/>")
    store.simulate_crash()
    store.recover()
    # Only the one post-checkpoint transaction is replayed.
    assert store.stats.replayed_records <= 4
    for i, msg_id in enumerate(ids):
        assert store.body_bytes(msg_id) == f"<m>{i}</m>".encode()
    assert store.body_bytes(after) == b"<after/>"
    store.close()

    reopened = MessageStore(str(tmp_path / "s"))
    assert reopened.message_count() == 11
    assert reopened.body_bytes(after) == b"<after/>"
    reopened.close()


def test_active_snapshot_pins_the_truncation_horizon(tmp_path):
    store = MessageStore(str(tmp_path / "s"))
    enqueue(store, "q", "<old/>")
    token = object()
    pinned = store.acquire_snapshot(token)
    for i in range(5):
        enqueue(store, "q", f"<m>{i}</m>")
    store.checkpoint()
    assert store.truncate_wal() == pinned       # capped at the snapshot
    assert store.wal.start_lsn() == pinned
    store.release_snapshot(token)
    assert store.truncate_wal() > 0             # the rest goes now
    assert store.wal.start_lsn() == \
        min(store.wal.last_checkpoint().data["wal_end"],
            store.snapshot_horizon())
    store.close()


def test_replica_ack_pins_truncation_unless_forced(tmp_path):
    store = MessageStore(str(tmp_path / "s"))
    enqueue(store, "q", "<first/>")
    lag = store.wal.end_lsn()
    for i in range(5):
        enqueue(store, "q", f"<m>{i}</m>")
    store.checkpoint()
    store.group_commit.shipper = _StubShipper(lag)
    assert store.truncate_wal() == lag          # replica holds the log
    assert store.wal.start_lsn() == lag
    assert store.truncate_wal(force=True) > 0   # ceiling breach: re-seed
    assert store.wal.start_lsn() == \
        min(store.wal.last_checkpoint().data["wal_end"],
            store.snapshot_horizon())
    store.close()


def test_checkpoint_skipped_for_in_memory_store():
    store = MessageStore()
    enqueue(store, "q", "<m/>")
    assert store.checkpoint() == "skipped"


# -- the scheduler ---------------------------------------------------------------


def test_scheduler_is_inert_by_default(tmp_path):
    store = MessageStore(str(tmp_path / "s"))
    scheduler = CheckpointScheduler(store)
    assert not scheduler.enabled
    enqueue(store, "q", "<m/>")
    assert scheduler.maybe_run() is None
    assert store.stats.checkpoints == 0
    store.close()


def test_scheduler_byte_trigger_checkpoints_and_truncates(tmp_path):
    store = MessageStore(str(tmp_path / "s"))
    scheduler = CheckpointScheduler(store, interval_bytes=256)
    assert scheduler.enabled
    assert scheduler.maybe_run() is None        # nothing appended yet
    while store.wal.end_lsn() < 256:
        enqueue(store, "q", "<mmmm/>")
    assert scheduler.maybe_run() == "completed"
    assert scheduler.runs == 1
    assert scheduler.truncated_bytes > 0
    assert store.wal.start_lsn() > 0
    # The mark moved: the next tick is not due again immediately.
    assert scheduler.maybe_run() is None
    store.close()


def test_scheduler_retries_a_deferred_checkpoint(tmp_path):
    store = MessageStore(str(tmp_path / "s"))
    scheduler = CheckpointScheduler(store, interval_bytes=1)
    open_txn = store.begin()
    open_txn.insert_message("q", b"<open/>", {}, [])
    store.publish(open_txn)                     # chained batch mid-flight
    assert scheduler.maybe_run() == "deferred"
    assert scheduler.deferred == 1
    store.commit(open_txn)
    # Retry fires on the very next tick, not after another interval.
    assert scheduler.maybe_run() == "completed"
    assert scheduler.runs == 1
    store.close()


def test_scheduler_ceiling_forces_past_a_lagging_replica(tmp_path):
    store = MessageStore(str(tmp_path / "s"))
    store.group_commit.shipper = _StubShipper(0)    # replica acked nothing
    scheduler = CheckpointScheduler(store, wal_ceiling_bytes=512)
    while store.wal.size_bytes() <= 512:
        enqueue(store, "q", "<mmmm/>")
    assert scheduler.maybe_run() == "completed"
    # Force mode ignored the replica's ack horizon entirely.
    assert store.wal.start_lsn() == \
        min(store.wal.last_checkpoint().data["wal_end"],
            store.snapshot_horizon()) > 0
    store.close()


def test_scheduler_keeps_wal_below_ceiling_over_a_soak(tmp_path):
    store = MessageStore(str(tmp_path / "s"))
    ceiling = 8192
    scheduler = CheckpointScheduler(store, wal_ceiling_bytes=ceiling)
    for i in range(200):
        msg = enqueue(store, "q", f"<m>{i}</m>")
        delete(store, msg)
        scheduler.maybe_run()
    scheduler.maybe_run()
    # One transaction can overshoot before the next tick notices; the
    # steady state stays within a transaction of the ceiling.
    assert store.wal.size_bytes() <= ceiling + 1024
    assert scheduler.runs >= 2
    store.close()


# -- heap page reuse -------------------------------------------------------------


def test_heap_reuses_freed_pages():
    heap = RecordHeap(BufferManager(InMemoryDiskManager()))
    rids = [heap.store(bytes([65 + i]) * 900) for i in range(20)]
    plateau = heap.buffer.disk.page_count
    for rid in rids:
        heap.delete(rid)
    again = [heap.store(bytes([97 + i]) * 900) for i in range(20)]
    assert heap.buffer.disk.page_count == plateau       # no new pages
    for i, rid in enumerate(again):
        assert heap.fetch(rid) == bytes([97 + i]) * 900


def test_store_level_delete_insert_cycle_reuses_pages(tmp_path):
    store = MessageStore(str(tmp_path / "s"))
    for i in range(50):
        enqueue(store, "q", f"<padding>{'x' * 500}</padding>")
    plateau = None
    for round_ in range(10):
        ids = [enqueue(store, "q", f"<r{round_}>{'y' * 500}</r{round_}>")
               for _ in range(20)]
        for msg_id in ids:
            delete(store, msg_id)
        if round_ == 2:
            plateau = store._disk.page_count
    assert plateau is not None
    # Page growth flatlines once the free list covers the working set.
    assert store._disk.page_count <= plateau + 2
    store.close()
