"""Property-based equivalence: materialized indexes vs their scan baselines.

Random insert/delete/lifetime-bump sequences must keep

* ``slice_messages`` (the §4.3 materialized slice index) identical to
  ``slice_messages_scan`` (the merged-query baseline), and
* ``property_lookup`` (the secondary property index) identical to
  ``property_lookup_scan`` (full queue scan),

for every slice key and probe value, after every step.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.storage import MessageStore

QUEUES = ["a", "b"]
SLICINGS = ["s1", "s2"]
KEYS = ["k1", "k2"]
VALUES = ["v1", "v2", 7, 7.5, True]


def _ops():
    insert = st.tuples(
        st.just("insert"),
        st.sampled_from(QUEUES),
        st.sampled_from(VALUES),
        st.lists(st.tuples(st.sampled_from(SLICINGS), st.sampled_from(KEYS)),
                 max_size=2, unique=True))
    delete = st.tuples(st.just("delete"), st.integers(1, 40))
    reset = st.tuples(st.just("reset"), st.sampled_from(SLICINGS),
                      st.sampled_from(KEYS))
    return st.lists(st.one_of(insert, delete, reset), max_size=40)


def _assert_equivalent(store):
    for slicing in SLICINGS:
        for key in KEYS:
            indexed = [m.msg_id for m in store.slice_messages(slicing, key)]
            scanned = [m.msg_id
                       for m in store.slice_messages_scan(slicing, key)]
            assert indexed == scanned
    for queue in QUEUES:
        for value in VALUES:
            indexed = [m.msg_id
                       for m in store.property_lookup(queue, "val", value)]
            scanned = [m.msg_id for m in
                       store.property_lookup_scan(queue, "val", value)]
            assert indexed == scanned


@settings(max_examples=60, deadline=None)
@given(ops=_ops())
def test_random_histories_keep_indexes_equivalent(ops):
    store = MessageStore()
    for queue in QUEUES:
        store.create_property_index(queue, "val")
    for op in ops:
        if op[0] == "insert":
            _, queue, value, memberships = op
            txn = store.begin()
            txn.insert_message(queue, b"<m/>", {"val": value},
                               list(memberships))
            store.commit(txn)
        elif op[0] == "delete":
            _, msg_id = op
            if store.get(msg_id) is not None:
                txn = store.begin()
                txn.delete_message(msg_id)
                store.commit(txn)
        else:
            _, slicing, key = op
            txn = store.begin()
            txn.reset_slice(slicing, key)
            store.commit(txn)
        _assert_equivalent(store)


class IndexEquivalence(RuleBasedStateMachine):
    """Stateful variant: interleavings chosen adaptively by hypothesis."""

    def __init__(self):
        super().__init__()
        self.store = MessageStore()
        for queue in QUEUES:
            self.store.create_property_index(queue, "val")
        self.inserted: list[int] = []

    @rule(queue=st.sampled_from(QUEUES), value=st.sampled_from(VALUES),
          memberships=st.lists(
              st.tuples(st.sampled_from(SLICINGS), st.sampled_from(KEYS)),
              max_size=2, unique=True))
    def insert(self, queue, value, memberships):
        txn = self.store.begin()
        op = txn.insert_message(queue, b"<m/>", {"val": value},
                                list(memberships))
        self.store.commit(txn)
        self.inserted.append(op.msg_id)

    @rule(pick=st.integers(0, 200))
    def delete(self, pick):
        if not self.inserted:
            return
        msg_id = self.inserted[pick % len(self.inserted)]
        if self.store.get(msg_id) is not None:
            txn = self.store.begin()
            txn.delete_message(msg_id)
            self.store.commit(txn)

    @rule(slicing=st.sampled_from(SLICINGS), key=st.sampled_from(KEYS))
    def bump_lifetime(self, slicing, key):
        txn = self.store.begin()
        txn.reset_slice(slicing, key)
        self.store.commit(txn)

    @invariant()
    def indexes_match_scans(self):
        _assert_equivalent(self.store)


TestIndexEquivalence = IndexEquivalence.TestCase
TestIndexEquivalence.settings = settings(max_examples=25, deadline=None)
