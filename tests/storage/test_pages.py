"""Tests for slotted pages."""

import pytest

from repro.storage import MAX_RECORD, PAGE_SIZE, PageError, SlottedPage


def test_insert_and_read():
    page = SlottedPage()
    slot = page.insert(b"hello")
    assert page.read(slot) == b"hello"
    assert page.slot_count == 1


def test_multiple_records_stable_slots():
    page = SlottedPage()
    slots = [page.insert(f"rec{i}".encode()) for i in range(10)]
    assert slots == list(range(10))
    for i, slot in enumerate(slots):
        assert page.read(slot) == f"rec{i}".encode()


def test_delete_frees_slot_but_keeps_numbering():
    page = SlottedPage()
    a = page.insert(b"a")
    b = page.insert(b"b")
    page.delete(a)
    assert not page.is_live(a)
    assert page.read(b) == b"b"
    with pytest.raises(PageError):
        page.read(a)
    with pytest.raises(PageError):
        page.delete(a)


def test_live_slots():
    page = SlottedPage()
    a = page.insert(b"a")
    b = page.insert(b"b")
    c = page.insert(b"c")
    page.delete(b)
    assert page.live_slots() == [a, c]


def test_free_space_decreases():
    page = SlottedPage()
    before = page.free_space()
    page.insert(b"x" * 100)
    assert page.free_space() <= before - 100


def test_page_full_raises():
    page = SlottedPage()
    chunk = b"x" * 1000
    with pytest.raises(PageError, match="full"):
        for _ in range(100):
            page.insert(chunk)


def test_max_record_fits_exactly():
    page = SlottedPage()
    slot = page.insert(b"y" * MAX_RECORD)
    assert len(page.read(slot)) == MAX_RECORD


def test_oversized_record_rejected():
    page = SlottedPage()
    with pytest.raises(PageError, match="exceeds"):
        page.insert(b"z" * (MAX_RECORD + 1))


def test_compaction_reclaims_deleted_space():
    page = SlottedPage()
    big = b"a" * 1200
    slots = [page.insert(big) for _ in range(3)]
    page.delete(slots[1])
    # a new 1200-byte record only fits after compaction (automatic)
    new_slot = page.insert(b"b" * 1200)
    assert page.read(new_slot) == b"b" * 1200
    assert page.read(slots[0]) == big
    assert page.read(slots[2]) == big


def test_lsn_round_trip():
    page = SlottedPage()
    page.insert(b"data")
    page.lsn = 12345
    assert page.lsn == 12345
    assert page.read(0) == b"data"


def test_serialization_round_trip():
    page = SlottedPage()
    page.insert(b"alpha")
    page.insert(b"beta")
    page.lsn = 7
    restored = SlottedPage(bytearray(bytes(page.data)))
    assert restored.lsn == 7
    assert restored.read(0) == b"alpha"
    assert restored.read(1) == b"beta"


def test_wrong_buffer_size_rejected():
    with pytest.raises(PageError):
        SlottedPage(bytearray(PAGE_SIZE - 1))


def test_bad_slot_rejected():
    page = SlottedPage()
    with pytest.raises(PageError):
        page.read(0)
    page.insert(b"a")
    with pytest.raises(PageError):
        page.read(5)


def test_used_bytes():
    page = SlottedPage()
    page.insert(b"aaaa")
    slot = page.insert(b"bbbb")
    assert page.used_bytes() == 8
    page.delete(slot)
    assert page.used_bytes() == 4


def test_empty_record_allowed():
    page = SlottedPage()
    # empty records get offset pointing at free space; ensure they read back
    slot = page.insert(b"x")
    assert page.read(slot) == b"x"
