"""Tests for the transactional message store: commits, recovery, GC."""

import pytest

from repro.storage import MessageStore, StorageError, TransactionError
from repro.storage.store import decode_value, encode_value
from repro.xquery.atomics import XSDateTime


def enqueue(store, queue, body, properties=None, slices=(), persistent=True):
    txn = store.begin()
    op = txn.insert_message(queue, body.encode(), properties or {},
                            list(slices), persistent)
    store.commit(txn)
    return op.msg_id


def test_insert_and_read_back():
    store = MessageStore()
    msg_id = enqueue(store, "crm", "<order><id>1</id></order>",
                     {"orderID": "1"})
    meta = store.get(msg_id)
    assert meta.queue == "crm"
    assert meta.property("orderID") == "1"
    assert store.body_bytes(msg_id) == b"<order><id>1</id></order>"


def test_queue_scan_in_arrival_order():
    store = MessageStore()
    ids = [enqueue(store, "crm", f"<m>{i}</m>") for i in range(5)]
    enqueue(store, "other", "<x/>")
    scanned = [m.msg_id for m in store.queue_messages("crm")]
    assert scanned == ids
    assert store.queue_depth("crm") == 5
    assert store.queue_depth("other") == 1
    assert store.queue_depth("empty") == 0


def test_transaction_atomicity_on_abort():
    store = MessageStore()
    txn = store.begin()
    txn.insert_message("crm", b"<m/>", {}, [])
    store.abort(txn)
    assert store.message_count() == 0
    with pytest.raises(TransactionError):
        store.commit(txn)


def test_multi_op_transaction():
    store = MessageStore()
    trigger = enqueue(store, "crm", "<in/>")
    txn = store.begin()
    txn.mark_processed(trigger)
    txn.insert_message("out", b"<a/>", {}, [])
    txn.insert_message("out", b"<b/>", {}, [])
    store.commit(txn)
    assert store.get(trigger).processed
    assert store.queue_depth("out") == 2


def test_unprocessed_messages_ordering():
    store = MessageStore()
    first = enqueue(store, "a", "<m/>")
    second = enqueue(store, "b", "<m/>")
    txn = store.begin()
    txn.mark_processed(first)
    store.commit(txn)
    assert [m.msg_id for m in store.unprocessed_messages()] == [second]


def test_slice_membership_and_scan():
    store = MessageStore()
    ids = [enqueue(store, "crm", f"<m>{i}</m>", slices=[("orders", "k1")])
           for i in range(3)]
    enqueue(store, "crm", "<m>other</m>", slices=[("orders", "k2")])
    got = [m.msg_id for m in store.slice_messages("orders", "k1")]
    assert got == ids
    assert store.slice_messages("orders", "nope") == []


def test_slice_scan_matches_index():
    store = MessageStore()
    for i in range(20):
        enqueue(store, "crm", f"<m>{i}</m>",
                slices=[("orders", f"k{i % 3}")])
    for key in ("k0", "k1", "k2"):
        via_index = [m.msg_id for m in store.slice_messages("orders", key)]
        via_scan = [m.msg_id
                    for m in store.slice_messages_scan("orders", key)]
        assert via_index == via_scan


def test_slice_reset_starts_new_lifetime():
    store = MessageStore()
    old = enqueue(store, "crm", "<old/>", slices=[("orders", "k")])
    txn = store.begin()
    txn.reset_slice("orders", "k")
    store.commit(txn)
    assert store.slice_lifetime("orders", "k") == 1
    new = enqueue(store, "crm", "<new/>", slices=[("orders", "k")])
    visible = [m.msg_id for m in store.slice_messages("orders", "k")]
    assert visible == [new]
    # the old message still exists physically until GC
    assert store.get(old) is not None


def test_retention_until_all_slices_reset():
    store = MessageStore()
    msg = enqueue(store, "crm", "<m/>",
                  slices=[("a", "k"), ("b", "k")])
    txn = store.begin()
    txn.mark_processed(msg)
    txn.reset_slice("a", "k")
    store.commit(txn)
    assert store.collect_garbage() == 0     # still in slice b
    txn = store.begin()
    txn.reset_slice("b", "k")
    store.commit(txn)
    assert store.collect_garbage() == 1
    assert store.get(msg) is None


def test_sliceless_processed_messages_collected():
    store = MessageStore()
    msg = enqueue(store, "crm", "<m/>")
    assert store.collect_garbage() == 0     # unprocessed: keep
    txn = store.begin()
    txn.mark_processed(msg)
    store.commit(txn)
    assert store.collect_garbage() == 1


def test_unprocessed_sliced_message_never_collected():
    store = MessageStore()
    enqueue(store, "crm", "<m/>", slices=[("s", "k")])
    txn = store.begin()
    txn.reset_slice("s", "k")
    store.commit(txn)
    assert store.collect_garbage() == 0     # not processed yet


def test_recovery_replays_committed_transactions(tmp_path):
    path = str(tmp_path / "store")
    store = MessageStore(path)
    msg = enqueue(store, "crm", "<survivor/>", {"p": "v"},
                  slices=[("s", "k")])
    store.simulate_crash()
    store.recover()
    meta = store.get(msg)
    assert meta is not None
    assert meta.property("p") == "v"
    assert store.body_bytes(msg) == b"<survivor/>"
    assert [m.msg_id for m in store.slice_messages("s", "k")] == [msg]
    store.close()


def test_recovery_skips_uncommitted(tmp_path):
    path = str(tmp_path / "store")
    store = MessageStore(path)
    enqueue(store, "crm", "<committed/>")
    # hand-craft a loser transaction in the log: BEGIN+INSERT, no COMMIT
    from repro.storage import wal as walmod
    store.wal.append(walmod.BEGIN, 999)
    store.wal.append(walmod.MSG_INSERT, 999, msg_id=777, queue="crm",
                     payload="<loser/>", properties={}, slices=[])
    store.wal.flush()
    store.simulate_crash()
    store.recover()
    assert store.message_count() == 1
    assert store.get(777) is None
    store.close()


def test_transient_messages_lost_on_crash(tmp_path):
    path = str(tmp_path / "store")
    store = MessageStore(path)
    enqueue(store, "durable", "<keep/>", persistent=True)
    enqueue(store, "scratch", "<lose/>", persistent=False)
    assert store.message_count() == 2
    store.simulate_crash()
    store.recover()
    assert store.queue_depth("durable") == 1
    assert store.queue_depth("scratch") == 0
    store.close()


def test_reopen_from_disk(tmp_path):
    path = str(tmp_path / "store")
    store = MessageStore(path)
    msg = enqueue(store, "crm", "<m/>" * 100)
    store.close()
    reopened = MessageStore(path)
    assert reopened.get(msg) is not None
    assert reopened.body_bytes(msg) == b"<m/>" * 100
    reopened.close()


def test_checkpoint_shortens_replay(tmp_path):
    path = str(tmp_path / "store")
    store = MessageStore(path)
    for i in range(20):
        enqueue(store, "crm", f"<m>{i}</m>")
    store.checkpoint()
    enqueue(store, "crm", "<after/>")
    store.simulate_crash()
    store.recover()
    assert store.message_count() == 21
    # only the post-checkpoint transaction is replayed (3 records)
    assert store.stats.replayed_records <= 4
    store.close()


def test_recovery_after_checkpoint_reads_heap_pages(tmp_path):
    path = str(tmp_path / "store")
    store = MessageStore(path)
    ids = [enqueue(store, "crm", f"<body-{i}/>") for i in range(5)]
    store.checkpoint()
    store.simulate_crash()
    store.recover()
    for i, msg_id in enumerate(ids):
        assert store.body_bytes(msg_id) == f"<body-{i}/>".encode()
    store.close()


def test_derived_deletion_mode_recovers_gc(tmp_path):
    path = str(tmp_path / "store")
    store = MessageStore(path, log_deletes=False)
    keep = enqueue(store, "crm", "<keep/>", slices=[("s", "live")])
    drop = enqueue(store, "crm", "<drop/>", slices=[("s", "dead")])
    txn = store.begin()
    txn.mark_processed(drop)
    txn.reset_slice("s", "dead")
    store.commit(txn)
    deleted = store.collect_garbage()
    assert deleted == 1
    # No MSG_DELETE record was written...
    from repro.storage import wal as walmod
    assert all(r.type != walmod.MSG_DELETE for r in store.wal.records())
    # ...yet recovery reaches the same state by re-deriving deletability.
    store.simulate_crash()
    store.recover()
    assert store.get(keep) is not None
    assert store.get(drop) is None
    store.close()


def test_logged_deletion_mode_writes_delete_records(tmp_path):
    path = str(tmp_path / "store")
    store = MessageStore(path, log_deletes=True)
    msg = enqueue(store, "crm", "<m/>")
    txn = store.begin()
    txn.mark_processed(msg)
    store.commit(txn)
    store.collect_garbage()
    from repro.storage import wal as walmod
    assert any(r.type == walmod.MSG_DELETE for r in store.wal.records())
    store.close()


def test_property_value_codec_round_trip():
    values = ["text", 42, 2.5, True, False,
              XSDateTime.parse("2026-06-12T10:00:00Z")]
    for value in values:
        assert decode_value(encode_value(value)) == value


def test_property_codec_rejects_unknown():
    with pytest.raises(StorageError):
        encode_value(object())
    with pytest.raises(StorageError):
        decode_value(["??", 1])


def test_large_message_body(tmp_path):
    store = MessageStore(str(tmp_path / "store"))
    body = "<big>" + "x" * 50_000 + "</big>"
    msg = enqueue(store, "crm", body)
    assert store.body_bytes(msg).decode() == body
    store.simulate_crash()
    store.recover()
    assert store.body_bytes(msg).decode() == body
    store.close()
