"""Savepoints: partial rollback inside one (chained) transaction.

The batch executor marks each member with a savepoint; a member that
fails alone rolls back to it without touching its batch-mates.  The
rolled-back span stays in the journal, is logged faithfully
(SAVEPOINT … ROLLBACK_SP), and recovery skips it.
"""

import pytest

from repro.storage import (MessageStore, StorageError, TransactionError,
                           WALError, WriteAheadLog)
from repro.storage import wal as walmod
from repro.storage.transactions import InsertOp, Transaction


def _insert(txn, n):
    return txn.insert_message("q", f"<m>{n}</m>".encode(), {}, [])


class TestTransactionJournal:
    def test_rollback_discards_ops_since_savepoint(self):
        txn = Transaction()
        _insert(txn, 1)
        sp = txn.savepoint()
        _insert(txn, 2)
        _insert(txn, 3)
        txn.rollback_to_savepoint(sp)
        _insert(txn, 4)
        live = txn.live_ops()
        assert [op.payload for op in live] == [b"<m>1</m>", b"<m>4</m>"]

    def test_savepoint_survives_rollback(self):
        txn = Transaction()
        sp = txn.savepoint()
        _insert(txn, 1)
        txn.rollback_to_savepoint(sp)
        _insert(txn, 2)
        txn.rollback_to_savepoint(sp)    # SQL semantics: still usable
        assert txn.live_ops() == []

    def test_nested_rollback_discards_inner_savepoints(self):
        txn = Transaction()
        outer = txn.savepoint()
        _insert(txn, 1)
        inner = txn.savepoint()
        _insert(txn, 2)
        txn.rollback_to_savepoint(outer)
        assert txn.live_ops() == []
        with pytest.raises(TransactionError):
            txn.rollback_to_savepoint(inner)

    def test_rollback_to_unknown_savepoint_raises(self):
        txn = Transaction()
        with pytest.raises(TransactionError):
            txn.rollback_to_savepoint(99)

    def test_touches_persistent_state_ignores_dead_ops(self):
        txn = Transaction()
        sp = txn.savepoint()
        _insert(txn, 1)
        txn.rollback_to_savepoint(sp)
        assert not txn.touches_persistent_state


class TestChainedPublish:
    def test_published_work_cannot_roll_back(self):
        store = MessageStore()
        txn = store.begin()
        sp = txn.savepoint()
        _insert(txn, 1)
        store.publish(txn)
        with pytest.raises(TransactionError):
            txn.rollback_to_savepoint(sp)
        store.commit(txn)
        store.close()

    def test_published_work_cannot_abort(self):
        store = MessageStore()
        txn = store.begin()
        _insert(txn, 1)
        store.publish(txn)
        with pytest.raises(TransactionError):
            store.abort(txn)
        store.commit(txn)
        store.close()

    def test_publish_makes_members_visible_before_commit(self):
        store = MessageStore()
        txn = store.begin()
        op = _insert(txn, 1)
        assert store.message_count() == 0
        store.publish(txn)
        assert store.get(op.msg_id) is not None   # batch-mates can read it
        store.commit(txn)
        store.close()

    def test_checkpoint_defers_on_open_chained_transaction(self, tmp_path):
        store = MessageStore(str(tmp_path / "cp"))
        txn = store.begin()
        _insert(txn, 1)
        store.publish(txn)
        assert store.checkpoint() == "deferred"
        assert store.stats.checkpoints_deferred == 1
        store.commit(txn)
        assert store.checkpoint() == "completed"
        store.close()

    def test_rolled_back_member_is_logged_and_skipped(self, tmp_path):
        store = MessageStore(str(tmp_path / "rb"), durability="group")
        txn = store.begin()
        txn.savepoint()
        keep1 = _insert(txn, 1)
        store.publish(txn)
        sp = txn.savepoint()
        dead = _insert(txn, 2)
        txn.rollback_to_savepoint(sp)
        txn.savepoint()
        keep2 = _insert(txn, 3)
        store.commit(txn)

        types = [r.type for r in store.wal.records()]
        assert types == [walmod.BEGIN, walmod.MSG_INSERT, walmod.SAVEPOINT,
                         walmod.MSG_INSERT, walmod.ROLLBACK_SP,
                         walmod.MSG_INSERT, walmod.COMMIT]
        assert store.get(dead.msg_id) is None

        store.simulate_crash()
        store.recover()
        assert store.get(keep1.msg_id) is not None
        assert store.get(keep2.msg_id) is not None
        assert store.get(dead.msg_id) is None
        assert store.message_count() == 2
        store.close()

    def test_clean_members_log_no_savepoint_records(self, tmp_path):
        store = MessageStore(str(tmp_path / "clean"))
        txn = store.begin()
        for n in range(3):
            txn.savepoint()
            _insert(txn, n)
            store.publish(txn)
        store.commit(txn)
        types = [r.type for r in store.wal.records()]
        assert walmod.SAVEPOINT not in types
        assert types == [walmod.BEGIN] + [walmod.MSG_INSERT] * 3 \
            + [walmod.COMMIT]
        store.close()

    def test_fully_rolled_back_batch_logs_nothing(self, tmp_path):
        store = MessageStore(str(tmp_path / "empty"))
        txn = store.begin()
        sp = txn.savepoint()
        _insert(txn, 1)
        txn.rollback_to_savepoint(sp)
        store.commit(txn)
        assert [r.type for r in store.wal.records()] == []
        assert store.message_count() == 0
        store.close()

    def test_uncommitted_chain_vanishes_on_crash(self, tmp_path):
        store = MessageStore(str(tmp_path / "chain"), durability="sync")
        txn = store.begin()
        txn.savepoint()
        op = _insert(txn, 1)
        store.publish(txn)
        assert store.get(op.msg_id) is not None
        store.wal.flush()        # even a forced prefix without COMMIT
        store.simulate_crash()
        store.recover()
        assert store.get(op.msg_id) is None
        assert store.message_count() == 0
        store.close()


class TestAnalysis:
    def test_rollback_without_savepoint_is_an_error(self):
        wal = WriteAheadLog(None)
        wal.append(walmod.BEGIN, 1)
        wal.append(walmod.ROLLBACK_SP, 1, sp=7)
        with pytest.raises(WALError):
            walmod.analyze_records(wal.records())

    def test_intervals_cover_repeated_rollbacks(self):
        wal = WriteAheadLog(None)
        wal.append(walmod.BEGIN, 1)
        sp_lsn = wal.append(walmod.SAVEPOINT, 1, sp=1)
        a = wal.append(walmod.MSG_PROCESSED, 1, msg_id=10)
        rb1 = wal.append(walmod.ROLLBACK_SP, 1, sp=1)
        b = wal.append(walmod.MSG_PROCESSED, 1, msg_id=11)
        rb2 = wal.append(walmod.ROLLBACK_SP, 1, sp=1)
        wal.append(walmod.COMMIT, 1)
        analysis = walmod.analyze_records(wal.records())
        assert analysis.committed == {1}
        spans = analysis.rolled_back[1]
        assert (sp_lsn, rb1) in spans and (sp_lsn, rb2) in spans
        records = {r.lsn: r for r in wal.records()}
        assert analysis.is_rolled_back(records[a])
        assert analysis.is_rolled_back(records[b])


def test_insert_op_exposes_msg_id_after_commit():
    store = MessageStore()
    txn = store.begin()
    op = _insert(txn, 1)
    assert op.msg_id is None
    store.commit(txn)
    assert isinstance(op, InsertOp) and op.msg_id is not None
    store.close()
