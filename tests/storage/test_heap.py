"""Tests for the record heap (incl. overflow chains)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import (BufferManager, InMemoryDiskManager, PAGE_SIZE,
                           RecordHeap, StorageError)
from repro.storage.pages import PageError


def make(capacity=16):
    disk = InMemoryDiskManager()
    buffer = BufferManager(disk, capacity)
    return disk, buffer, RecordHeap(buffer)


def test_store_and_fetch_small():
    _, _, heap = make()
    rid = heap.store(b"hello world")
    assert heap.fetch(rid) == b"hello world"


def test_store_many_records_share_pages():
    disk, _, heap = make()
    rids = [heap.store(f"record-{i}".encode()) for i in range(100)]
    assert disk.page_count < 10    # far fewer pages than records
    for i, rid in enumerate(rids):
        assert heap.fetch(rid) == f"record-{i}".encode()


def test_large_record_spans_pages():
    disk, _, heap = make()
    big = bytes(range(256)) * 64    # 16 KiB > 4 KiB page
    rid = heap.store(big)
    assert disk.page_count >= 4
    assert heap.fetch(rid) == big


def test_empty_record():
    _, _, heap = make()
    rid = heap.store(b"")
    assert heap.fetch(rid) == b""


def test_delete_frees_all_chunks():
    _, buffer, heap = make()
    big = b"z" * (3 * PAGE_SIZE)
    rid = heap.store(big)
    heap.delete(rid)
    with pytest.raises((StorageError, PageError)):
        heap.fetch(rid)


def test_space_reuse_after_delete():
    disk, _, heap = make()
    rids = [heap.store(b"a" * 1000) for _ in range(20)]
    pages_before = disk.page_count
    for rid in rids:
        heap.delete(rid)
    # new inserts reuse the open page's compacted space
    for _ in range(3):
        heap.store(b"b" * 1000)
    assert disk.page_count <= pages_before + 1


def test_fetch_survives_eviction():
    _, buffer, heap = make(capacity=2)
    rids = [heap.store(f"rec{i}".encode() * 50) for i in range(30)]
    for i, rid in enumerate(rids):
        assert heap.fetch(rid) == f"rec{i}".encode() * 50


@settings(max_examples=30, deadline=None)
@given(st.lists(st.binary(min_size=0, max_size=10_000), min_size=1,
                max_size=12))
def test_round_trip_property(payloads):
    _, _, heap = make(capacity=8)
    rids = [heap.store(p) for p in payloads]
    for rid, payload in zip(rids, payloads):
        assert heap.fetch(rid) == payload


@settings(max_examples=15, deadline=None)
@given(st.lists(st.tuples(st.binary(max_size=5000), st.booleans()),
                min_size=1, max_size=15))
def test_interleaved_store_delete(cases):
    _, _, heap = make(capacity=8)
    live = {}
    for index, (payload, delete_it) in enumerate(cases):
        rid = heap.store(payload)
        if delete_it:
            heap.delete(rid)
        else:
            live[index] = (rid, payload)
    for rid, payload in live.values():
        assert heap.fetch(rid) == payload
