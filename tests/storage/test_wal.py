"""Tests for the write-ahead log."""

import pytest

from repro.storage import WALError, WriteAheadLog
from repro.storage.wal import (ABORT, BEGIN, CHECKPOINT, COMMIT, MSG_INSERT,
                               MSG_PROCESSED, analyze)


def test_append_and_read_back():
    wal = WriteAheadLog(None)
    wal.append(BEGIN, 1)
    wal.append(MSG_INSERT, 1, msg_id=7, queue="crm", payload="<m/>",
               properties={}, slices=[])
    wal.append(COMMIT, 1)
    records = list(wal.records())
    assert [r.type for r in records] == [BEGIN, MSG_INSERT, COMMIT]
    assert records[1].data["msg_id"] == 7
    assert records[1].data["payload"] == "<m/>"


def test_lsns_are_monotonic_offsets():
    wal = WriteAheadLog(None)
    lsns = [wal.append(BEGIN, i) for i in range(5)]
    assert lsns == sorted(lsns)
    assert lsns[0] == 0
    read_back = [r.lsn for r in wal.records()]
    assert read_back == lsns


def test_records_from_offset():
    wal = WriteAheadLog(None)
    wal.append(BEGIN, 1)
    middle = wal.append(COMMIT, 1)
    wal.append(BEGIN, 2)
    tail = list(wal.records(middle))
    assert [r.type for r in tail] == [COMMIT, BEGIN]


def test_file_backed_persistence(tmp_path):
    path = str(tmp_path / "wal.log")
    wal = WriteAheadLog(path)
    wal.append(BEGIN, 1)
    wal.append(COMMIT, 1)
    wal.flush()
    wal.close()
    reopened = WriteAheadLog(path)
    assert [r.type for r in reopened.records()] == [BEGIN, COMMIT]
    reopened.close()


def test_torn_tail_detected(tmp_path):
    path = str(tmp_path / "wal.log")
    wal = WriteAheadLog(path)
    wal.append(BEGIN, 1)
    wal.append(COMMIT, 1)
    wal.flush()
    wal.close()
    # simulate a torn write: append garbage bytes
    with open(path, "ab") as fh:
        fh.write(b"\x99\x10\x00\x00partial")
    reopened = WriteAheadLog(path)
    assert [r.type for r in reopened.records()] == [BEGIN, COMMIT]
    reopened.close()


def test_corrupt_crc_stops_iteration(tmp_path):
    path = str(tmp_path / "wal.log")
    wal = WriteAheadLog(path)
    wal.append(BEGIN, 1)
    second = wal.append(COMMIT, 1)
    wal.flush()
    wal.close()
    with open(path, "r+b") as fh:
        fh.seek(second + 9)   # inside the second record's payload
        fh.write(b"X")
    reopened = WriteAheadLog(path)
    assert [r.type for r in reopened.records()] == [BEGIN]
    reopened.close()


def test_flush_to_is_cheap_when_flushed():
    wal = WriteAheadLog(None)
    lsn = wal.append(BEGIN, 1)
    wal.flush()
    flushes = wal.flushes
    wal.flush_to(lsn)
    assert wal.flushes == flushes


def test_unknown_record_type_rejected():
    wal = WriteAheadLog(None)
    wal.append(BEGIN, 1)
    with pytest.raises(WALError):
        list(_corrupt_type(wal))


def _corrupt_type(wal):
    from repro.storage.wal import LogRecord
    yield LogRecord(0, "bogus", 1, {})


def test_last_checkpoint():
    wal = WriteAheadLog(None)
    assert wal.last_checkpoint() is None
    wal.append(CHECKPOINT, None, wal_end=0)
    wal.append(BEGIN, 1)
    second = wal.append(CHECKPOINT, None, wal_end=99)
    checkpoint = wal.last_checkpoint()
    assert checkpoint.lsn == second
    assert checkpoint.data["wal_end"] == 99


def test_analyze_committed_and_losers():
    wal = WriteAheadLog(None)
    wal.append(BEGIN, 1)
    wal.append(COMMIT, 1)
    wal.append(BEGIN, 2)          # loser: no commit
    wal.append(BEGIN, 3)
    wal.append(ABORT, 3)
    committed, aborted = analyze(wal.records())
    assert committed == {1}
    assert aborted == {3}


def test_size_tracking():
    wal = WriteAheadLog(None)
    assert wal.size_bytes() == 0
    wal.append(MSG_PROCESSED, 1, msg_id=1)
    assert wal.size_bytes() > 0
