"""Property-based model test: the message store against a reference model.

Random interleavings of insert / process / reset / GC / crash+recover
must keep the store equivalent to a trivial in-memory model.  This is the
deep invariant behind the paper's retention semantics (§2.3.3): a message
is physically removable iff it is processed and belongs to no live slice.
"""

from dataclasses import dataclass, field

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (Bundle, RuleBasedStateMachine, invariant,
                                 rule)

from repro.storage import MessageStore

SLICINGS = ["s1", "s2"]
KEYS = ["k1", "k2", "k3"]


@dataclass
class ModelMessage:
    msg_id: int
    queue: str
    body: bytes
    slices: list[tuple[str, str, int]] = field(default_factory=list)
    processed: bool = False


class StoreModel(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.store = MessageStore()
        self.model: dict[int, ModelMessage] = {}
        self.lifetimes: dict[tuple[str, str], int] = {}

    messages = Bundle("messages")

    @rule(target=messages,
          queue=st.sampled_from(["a", "b"]),
          memberships=st.lists(
              st.tuples(st.sampled_from(SLICINGS), st.sampled_from(KEYS)),
              max_size=2, unique=True),
          payload=st.integers(min_value=0, max_value=999))
    def insert(self, queue, memberships, payload):
        body = f"<m>{payload}</m>".encode()
        txn = self.store.begin()
        op = txn.insert_message(queue, body, {}, list(memberships))
        self.store.commit(txn)
        entry = ModelMessage(op.msg_id, queue, body)
        for slicing, key in memberships:
            lifetime = self.lifetimes.get((slicing, key), 0)
            entry.slices.append((slicing, key, lifetime))
        self.model[op.msg_id] = entry
        return op.msg_id

    @rule(msg_id=messages)
    def process(self, msg_id):
        if msg_id not in self.model:
            return
        txn = self.store.begin()
        txn.mark_processed(msg_id)
        self.store.commit(txn)
        self.model[msg_id].processed = True

    @rule(slicing=st.sampled_from(SLICINGS), key=st.sampled_from(KEYS))
    def reset(self, slicing, key):
        txn = self.store.begin()
        txn.reset_slice(slicing, key)
        self.store.commit(txn)
        self.lifetimes[(slicing, key)] = \
            self.lifetimes.get((slicing, key), 0) + 1

    @rule()
    def collect(self):
        deleted = self.store.collect_garbage()
        expected = {mid for mid, m in self.model.items()
                    if m.processed and not self._retained(m)}
        assert deleted == len(expected)
        for mid in expected:
            del self.model[mid]

    def _retained(self, message: ModelMessage) -> bool:
        return any(self.lifetimes.get((s, k), 0) == lifetime
                   for s, k, lifetime in message.slices)

    @invariant()
    def store_matches_model(self):
        assert self.store.message_count() == len(self.model)
        for mid, entry in self.model.items():
            meta = self.store.get(mid)
            assert meta is not None
            assert meta.queue == entry.queue
            assert meta.processed == entry.processed
            assert self.store.body_bytes(mid) == entry.body

    @invariant()
    def slice_scans_agree(self):
        for slicing in SLICINGS:
            for key in KEYS:
                via_index = [m.msg_id for m in
                             self.store.slice_messages(slicing, key)]
                via_scan = [m.msg_id for m in
                            self.store.slice_messages_scan(slicing, key)]
                assert via_index == via_scan
                expected = sorted(
                    mid for mid, m in self.model.items()
                    if (slicing, key,
                        self.lifetimes.get((slicing, key), 0)) in m.slices)
                assert via_index == expected


StoreModelTest = StoreModel.TestCase
StoreModelTest.settings = settings(max_examples=25,
                                   stateful_step_count=30,
                                   deadline=None)


@settings(max_examples=10, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=200), min_size=1,
                max_size=40))
def test_persistent_store_recovers_random_population(tmp_path_factory,
                                                     payloads):
    directory = str(tmp_path_factory.mktemp("store"))
    store = MessageStore(directory)
    ids = []
    for index, payload in enumerate(payloads):
        txn = store.begin()
        op = txn.insert_message(
            "q", f"<m>{payload}</m>".encode(), {"n": index},
            [("s", f"k{payload % 3}")])
        store.commit(txn)
        ids.append((op.msg_id, payload))
    store.simulate_crash()
    store.recover()
    assert store.message_count() == len(payloads)
    for msg_id, payload in ids:
        assert store.body_bytes(msg_id) == f"<m>{payload}</m>".encode()
    store.close()
