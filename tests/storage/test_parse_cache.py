"""The store's bounded parsed-document cache (messages are append-only,
so one decode + one parse can be shared by every reader of a message).
"""

import pytest

from repro.queues import Message
from repro.storage import MessageStore
from repro.storage.errors import StorageError


def _insert(store, queue="q", body=b"<m><v>1</v></m>"):
    txn = store.begin()
    txn.insert_message(queue, body, {}, [])
    store.commit(txn)
    return max(m.msg_id for m in store.queue_messages(queue))


def test_handles_share_one_parse():
    store = MessageStore()
    msg_id = _insert(store)
    meta = store.get(msg_id)
    first = Message(meta, store)
    second = Message(meta, store)
    assert first.body is second.body
    assert store.stats.body_parses == 1
    assert store.stats.parse_cache_hits >= 1


def test_text_and_parse_share_one_decode():
    store = MessageStore()
    msg_id = _insert(store)
    meta = store.get(msg_id)
    message = Message(meta, store)
    text = message.body_text()
    assert text == "<m><v>1</v></m>"
    # The parse path reuses the cached decoded text entry.
    assert message.body.root_element.name.local_name == "m"
    assert store.stats.body_parses == 1
    assert message.body_text() == text


def test_delete_invalidates_cache_entry():
    store = MessageStore()
    msg_id = _insert(store)
    store.parsed_body(msg_id)
    txn = store.begin()
    txn.delete_message(msg_id)
    store.commit(txn)
    with pytest.raises(StorageError):
        store.parsed_body(msg_id)
    with pytest.raises(StorageError):
        store.body_text(msg_id)


def test_cache_is_bounded_lru():
    store = MessageStore(parse_cache_capacity=2)
    ids = [_insert(store, body=f"<m><v>{i}</v></m>".encode())
           for i in range(4)]
    for msg_id in ids:
        store.parsed_body(msg_id)
    assert len(store._parse_cache) == 2
    # Most recently used entries survive; older ones re-parse on access.
    parses = store.stats.body_parses
    store.parsed_body(ids[-1])
    assert store.stats.body_parses == parses
    store.parsed_body(ids[0])
    assert store.stats.body_parses == parses + 1


def test_capacity_zero_disables_caching():
    store = MessageStore(parse_cache_capacity=0)
    msg_id = _insert(store)
    a = store.parsed_body(msg_id)
    b = store.parsed_body(msg_id)
    assert a is not b
    assert len(store._parse_cache) == 0


def test_crash_recovery_clears_cache(tmp_path):
    store = MessageStore(str(tmp_path))
    msg_id = _insert(store)
    doc = store.parsed_body(msg_id)
    store.simulate_crash()
    store.recover()
    recovered = store.parsed_body(msg_id)
    assert recovered is not doc
    assert recovered.root_element.name.local_name == "m"
    store.close()
