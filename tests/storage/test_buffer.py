"""Tests for the buffer manager."""

import pytest

from repro.storage import (BufferError_, BufferManager, InMemoryDiskManager,
                           WriteAheadLog)


def make(capacity=4, wal=None):
    disk = InMemoryDiskManager()
    flush = wal.flush_to if wal is not None else None
    return disk, BufferManager(disk, capacity, flush_to_lsn=flush)


def test_new_page_is_pinned_and_dirty():
    disk, buffer = make()
    page_id, page = buffer.new_page()
    page.insert(b"data")
    buffer.unpin(page_id, dirty=True)
    buffer.flush_all()
    assert disk.writes >= 1


def test_pin_returns_cached_frame():
    disk, buffer = make()
    page_id, page = buffer.new_page()
    buffer.unpin(page_id, dirty=True)
    again = buffer.pin(page_id)
    assert again is page
    assert buffer.hits == 1
    buffer.unpin(page_id)


def test_eviction_when_capacity_exceeded():
    disk, buffer = make(capacity=2)
    ids = []
    for i in range(4):
        page_id, page = buffer.new_page()
        page.insert(f"page{i}".encode())
        buffer.unpin(page_id, dirty=True)
        ids.append(page_id)
    assert buffer.evictions >= 2
    assert len(buffer.resident_pages()) <= 2
    # evicted pages were written back and can be re-read
    first = buffer.pin(ids[0])
    assert first.read(0) == b"page0"
    buffer.unpin(ids[0])


def test_pinned_pages_not_evicted():
    disk, buffer = make(capacity=2)
    a, page_a = buffer.new_page()
    page_a.insert(b"keep")
    b, _ = buffer.new_page()
    buffer.unpin(b)
    c, _ = buffer.new_page()   # must evict b, not pinned a
    buffer.unpin(c)
    assert a in buffer.resident_pages()
    assert page_a.read(0) == b"keep"
    buffer.unpin(a)


def test_all_pinned_raises():
    _, buffer = make(capacity=2)
    buffer.new_page()
    buffer.new_page()
    with pytest.raises(BufferError_, match="pinned"):
        buffer.new_page()


def test_unpin_of_unpinned_raises():
    _, buffer = make()
    page_id, _ = buffer.new_page()
    buffer.unpin(page_id)
    with pytest.raises(BufferError_):
        buffer.unpin(page_id)


def test_dirty_data_survives_eviction_and_reload():
    disk, buffer = make(capacity=1)
    a, page = buffer.new_page()
    slot = page.insert(b"persisted")
    buffer.unpin(a, dirty=True)
    b, _ = buffer.new_page()   # evicts a
    buffer.unpin(b, dirty=True)
    reloaded = buffer.pin(a)
    assert reloaded.read(slot) == b"persisted"
    buffer.unpin(a)


def test_wal_flushed_before_page_write():
    wal = WriteAheadLog(None)
    disk, buffer = make(capacity=1, wal=wal)
    lsn = wal.append("msg_insert", 1, msg_id=1)
    page_id, page = buffer.new_page()
    page.insert(b"x")
    page.lsn = wal.end_lsn()
    buffer.unpin(page_id, dirty=True)
    assert wal.flushed_lsn <= lsn
    other, _ = buffer.new_page()   # evicting the dirty page forces a flush
    buffer.unpin(other)
    assert wal.flushed_lsn >= page.lsn


def test_drop_all_simulates_crash():
    disk, buffer = make()
    page_id, page = buffer.new_page()
    page.insert(b"lost")
    buffer.unpin(page_id, dirty=True)
    buffer.drop_all()
    assert buffer.resident_pages() == []


def test_flush_all_syncs_everything():
    disk, buffer = make()
    for _ in range(3):
        page_id, page = buffer.new_page()
        page.insert(b"d")
        buffer.unpin(page_id, dirty=True)
    buffer.flush_all()
    assert disk.writes >= 3


def test_capacity_validation():
    with pytest.raises(BufferError_):
        BufferManager(InMemoryDiskManager(), 0)
