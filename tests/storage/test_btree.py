"""Tests for the B+-tree (slice/message index)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import BPlusTree


def test_insert_get():
    tree = BPlusTree(order=4)
    tree.insert(("a", 1), "v1")
    tree.insert(("a", 2), "v2")
    assert tree.get(("a", 1)) == "v1"
    assert tree.get(("a", 2)) == "v2"
    assert tree.get(("a", 3)) is None
    assert tree.get(("a", 3), "dflt") == "dflt"


def test_overwrite_keeps_size():
    tree = BPlusTree(order=4)
    tree.insert(("k",), 1)
    tree.insert(("k",), 2)
    assert len(tree) == 1
    assert tree.get(("k",)) == 2


def test_contains():
    tree = BPlusTree(order=4)
    tree.insert((5,), "x")
    assert (5,) in tree
    assert (6,) not in tree


def test_many_inserts_force_splits():
    tree = BPlusTree(order=4)
    for i in range(500):
        tree.insert((i,), i * 10)
    assert len(tree) == 500
    assert tree.node_splits > 0
    assert tree.depth() > 1
    for i in range(500):
        assert tree.get((i,)) == i * 10
    tree.check_invariants()


def test_ordered_iteration():
    tree = BPlusTree(order=4)
    keys = list(range(200))
    random.Random(7).shuffle(keys)
    for k in keys:
        tree.insert((k,), k)
    values = [v for _, v in tree.items()]
    assert values == list(range(200))


def test_range_scan():
    tree = BPlusTree(order=4)
    for i in range(100):
        tree.insert((i,), i)
    got = [v for _, v in tree.items(low=(10,), high=(20,))]
    assert got == list(range(10, 20))


def test_prefix_scan_composite_keys():
    tree = BPlusTree(order=4)
    for queue in ("crm", "finance", "legal"):
        for seqno in range(10):
            tree.insert((queue, seqno), f"{queue}-{seqno}")
    got = [v for _, v in tree.prefix_items(("finance",))]
    assert got == [f"finance-{i}" for i in range(10)]
    assert list(tree.prefix_items(("nothing",))) == []


def test_slice_index_key_shape():
    # (slicing, key, lifetime, seqno) — the store's slice index layout
    tree = BPlusTree(order=4)
    for seq in range(5):
        tree.insert(("orders", "cust-7", 0, seq), seq)
    for seq in range(5, 8):
        tree.insert(("orders", "cust-7", 1, seq), seq)
    lifetime0 = [v for _, v in tree.prefix_items(("orders", "cust-7", 0))]
    lifetime1 = [v for _, v in tree.prefix_items(("orders", "cust-7", 1))]
    assert lifetime0 == [0, 1, 2, 3, 4]
    assert lifetime1 == [5, 6, 7]


def test_mixed_type_keys_totally_ordered():
    tree = BPlusTree(order=4)
    tree.insert(("s", 1), "int")
    tree.insert(("s", "1"), "str")
    assert tree.get(("s", 1)) == "int"
    assert tree.get(("s", "1")) == "str"
    assert len(tree) == 2
    tree.check_invariants()


def test_delete_simple():
    tree = BPlusTree(order=4)
    for i in range(20):
        tree.insert((i,), i)
    assert tree.delete((10,))
    assert tree.get((10,)) is None
    assert not tree.delete((10,))
    assert len(tree) == 19
    tree.check_invariants()


def test_delete_everything_collapses_root():
    tree = BPlusTree(order=4)
    for i in range(300):
        tree.insert((i,), i)
    for i in range(300):
        assert tree.delete((i,))
    assert len(tree) == 0
    assert tree.depth() == 1
    assert list(tree.items()) == []
    tree.check_invariants()


def test_merges_happen_on_shrink():
    tree = BPlusTree(order=4)
    for i in range(400):
        tree.insert((i,), i)
    for i in range(0, 400, 2):
        tree.delete((i,))
    for i in range(1, 400, 7):
        tree.delete((i,))
    tree.check_invariants()
    assert tree.node_merges > 0


def test_dump_load_round_trip():
    tree = BPlusTree(order=8)
    for i in range(50):
        tree.insert(("q", i), i * 2)
    loaded = BPlusTree.load(tree.dump(), order=8)
    assert len(loaded) == 50
    assert [v for _, v in loaded.items()] == [v for _, v in tree.items()]


def test_order_validation():
    with pytest.raises(ValueError):
        BPlusTree(order=2)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=10_000), max_size=300))
def test_matches_dict_semantics(keys):
    tree = BPlusTree(order=4)
    reference = {}
    for k in keys:
        tree.insert((k,), k * 3)
        reference[(k,)] = k * 3
    assert len(tree) == len(reference)
    for k in reference:
        assert tree.get(k) == reference[k]
    assert [v for _, v in tree.items()] == \
        [reference[k] for k in sorted(reference)]
    tree.check_invariants()


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=100),
                          st.booleans()), max_size=200))
def test_insert_delete_fuzz(operations):
    tree = BPlusTree(order=4)
    reference = {}
    for key, delete_it in operations:
        if delete_it:
            assert tree.delete((key,)) == ((key,) in reference)
            reference.pop((key,), None)
        else:
            tree.insert((key,), key)
            reference[(key,)] = key
    assert len(tree) == len(reference)
    expected = sorted(tuple((0, v) for v in key) for key in reference)
    assert [k for k, _ in tree.items()] == expected
    tree.check_invariants()
