"""Property-value secondary indexes over the message store."""

import pytest

from repro.storage import MessageStore, StorageError


def fill(store, count=12, keys=3):
    ids = []
    for index in range(count):
        txn = store.begin()
        op = txn.insert_message(
            "orders", f"<o>{index}</o>".encode(),
            {"customer": f"c{index % keys}", "amount": index},
            [])
        store.commit(txn)
        ids.append(op.msg_id)
    return ids


def test_lookup_matches_scan():
    store = MessageStore()
    store.create_property_index("orders", "customer")
    fill(store)
    for key in ("c0", "c1", "c2", "missing"):
        indexed = [m.msg_id for m in
                   store.property_lookup("orders", "customer", key)]
        scanned = [m.msg_id for m in
                   store.property_lookup_scan("orders", "customer", key)]
        assert indexed == scanned


def test_index_created_over_existing_messages():
    store = MessageStore()
    fill(store)
    store.create_property_index("orders", "customer")
    assert [m.msg_id for m in
            store.property_lookup("orders", "customer", "c1")] == \
        [m.msg_id for m in
         store.property_lookup_scan("orders", "customer", "c1")]


def test_lookup_without_index_raises():
    store = MessageStore()
    fill(store)
    with pytest.raises(StorageError):
        store.property_lookup("orders", "customer", "c0")


def test_deletes_maintain_index():
    store = MessageStore()
    store.create_property_index("orders", "customer")
    ids = fill(store)
    txn = store.begin()
    txn.delete_message(ids[1])
    txn.delete_message(ids[4])
    store.commit(txn)
    hits = [m.msg_id for m in
            store.property_lookup("orders", "customer", "c1")]
    assert ids[1] not in hits and ids[4] not in hits
    assert hits == [m.msg_id for m in
                    store.property_lookup_scan("orders", "customer", "c1")]


def test_typed_values_do_not_cross_match():
    """1 (int), 1.0 (float) and true are distinct index keys."""
    store = MessageStore()
    store.create_property_index("q", "v")
    for value in (1, 1.0, True, "1"):
        txn = store.begin()
        txn.insert_message("q", b"<m/>", {"v": value}, [])
        store.commit(txn)
    for probe in (1, 1.0, True, "1"):
        indexed = [m.msg_id for m in store.property_lookup("q", "v", probe)]
        scanned = [m.msg_id
                   for m in store.property_lookup_scan("q", "v", probe)]
        assert indexed == scanned
        assert len(indexed) == 1


def test_messages_without_the_property_are_absent():
    store = MessageStore()
    store.create_property_index("orders", "customer")
    txn = store.begin()
    txn.insert_message("orders", b"<o/>", {}, [])
    store.commit(txn)
    assert store.property_lookup("orders", "customer", "c0") == []
    assert len(store.property_index_entries("orders", "customer")) == 0


def test_queue_depth_counts_without_materializing():
    store = MessageStore()
    fill(store, count=7)
    assert store.queue_depth("orders") == 7
    assert store.queue_depth("empty") == 0
    txn = store.begin()
    txn.delete_message(1)
    store.commit(txn)
    assert store.queue_depth("orders") == 6


def test_registration_is_idempotent():
    store = MessageStore()
    store.create_property_index("orders", "customer")
    fill(store, count=4)
    before = store.property_index_entries("orders", "customer")
    store.create_property_index("orders", "customer")
    assert store.property_index_entries("orders", "customer") == before
    assert store.property_indexes() == [("orders", "customer")]


def test_index_rebuilt_on_recovery(tmp_path):
    store = MessageStore(str(tmp_path))
    store.create_property_index("orders", "customer")
    fill(store, count=9)
    expected = store.property_index_entries("orders", "customer")
    assert expected
    store.simulate_crash()
    assert store.property_index_entries("orders", "customer") == []
    store.recover()
    assert store.property_index_entries("orders", "customer") == expected


def test_index_rebuilt_from_checkpoint_plus_tail(tmp_path):
    store = MessageStore(str(tmp_path))
    store.create_property_index("orders", "customer")
    fill(store, count=5)
    store.checkpoint()
    fill(store, count=4)          # WAL tail past the checkpoint
    expected = store.property_index_entries("orders", "customer")
    store.simulate_crash()
    store.recover()
    assert store.property_index_entries("orders", "customer") == expected
    for key in ("c0", "c1", "c2"):
        assert [m.msg_id for m in
                store.property_lookup("orders", "customer", key)] == \
            [m.msg_id for m in
             store.property_lookup_scan("orders", "customer", key)]
