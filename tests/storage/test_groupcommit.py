"""Group-commit coordinator behavior and crash semantics per policy.

The durability contract under test (DESIGN.md §2):

* ``sync``  — every commit forces inline; an acknowledged commit always
  survives a crash.
* ``group`` — commits coalesce through a leader force but are durable by
  the time ``commit()`` returns (wait bounded by ``max_wait``); an
  acknowledged commit always survives a crash.
* ``async`` — commits acknowledge before forcing; a crash loses at most
  the unforced log tail, cleanly.
"""

import threading

import pytest

from repro.storage import (GroupCommitCoordinator, MessageStore, StorageError,
                           WriteAheadLog)


def _commit_one(store, payload=b"<m>x</m>"):
    txn = store.begin()
    op = txn.insert_message("q", payload, {}, [])
    store.commit(txn)
    return op.msg_id


class TestCoordinator:
    def test_rejects_unknown_policy(self):
        with pytest.raises(StorageError):
            GroupCommitCoordinator(WriteAheadLog(None), policy="fsync-maybe")
        with pytest.raises(StorageError):
            MessageStore(durability="eventually")

    def test_sync_forces_every_commit(self, tmp_path):
        store = MessageStore(str(tmp_path / "s"), durability="sync")
        for _ in range(5):
            _commit_one(store)
        stats = store.wal.stats()
        assert stats.flushes == 5
        assert stats.flushed_lsn == stats.end_lsn
        assert store.group_commit.stats.inline_forces == 5
        store.close()

    def test_group_commit_is_durable_on_return(self, tmp_path):
        store = MessageStore(str(tmp_path / "g"), durability="group")
        for _ in range(5):
            _commit_one(store)
        stats = store.wal.stats()
        assert stats.flushed_lsn == stats.end_lsn
        assert store.group_commit.stats.leader_forces >= 1
        store.close()

    def test_group_coalesces_concurrent_commits(self, tmp_path):
        store = MessageStore(str(tmp_path / "c"), durability="group",
                             group_commit_max_wait=5.0)
        coordinator = store.group_commit
        # Stage: hold the leader role back so several commits pile up,
        # then release them into one coalesced force.
        coordinator.pause()
        threads = [threading.Thread(target=_commit_one, args=(store,))
                   for _ in range(4)]
        before = store.wal.stats().flushes
        for thread in threads:
            thread.start()
        deadline = threading.Event()
        for _ in range(200):
            if coordinator.pending_lsn() > store.wal.flushed_lsn \
                    and coordinator.stats.commits >= 4:
                break
            deadline.wait(0.005)
        coordinator.resume()
        for thread in threads:
            thread.join()
        after = store.wal.stats()
        assert after.flushed_lsn == after.end_lsn
        # 4 commits, at most 2 forces (one leader + at most one chaser)
        assert after.flushes - before <= 2
        assert coordinator.stats.group_waits >= 1
        store.close()

    def test_group_wait_is_bounded_by_max_wait(self, tmp_path):
        store = MessageStore(str(tmp_path / "b"), durability="group",
                             group_commit_max_wait=0.02)
        store.group_commit.pause()     # nobody may lead: stall the group
        _commit_one(store)             # must still return, forced inline
        stats = store.wal.stats()
        assert stats.flushed_lsn == stats.end_lsn
        assert store.group_commit.stats.inline_forces >= 1
        store.close()

    def test_async_acknowledges_before_force(self, tmp_path):
        store = MessageStore(str(tmp_path / "a"), durability="async")
        store.group_commit.pause()
        _commit_one(store)             # returns without waiting
        stats = store.wal.stats()
        assert stats.flushed_lsn < stats.end_lsn
        store.group_commit.resume()
        store.group_commit.drain()
        stats = store.wal.stats()
        assert stats.flushed_lsn == stats.end_lsn
        store.close()

    def test_close_forces_pending_tail(self, tmp_path):
        store = MessageStore(str(tmp_path / "t"), durability="async")
        store.group_commit.pause()
        _commit_one(store)
        store.close()
        reopened = MessageStore(str(tmp_path / "t"), durability="async")
        assert reopened.message_count() == 1
        reopened.close()

    def test_commit_after_close_raises(self):
        wal = WriteAheadLog(None)
        coordinator = GroupCommitCoordinator(wal, "async")
        coordinator.close()
        with pytest.raises(StorageError):
            coordinator.commit(10)

    def test_wal_stats_snapshot_is_consistent(self):
        wal = WriteAheadLog(None)
        wal.append("begin", 1)
        wal.append("commit", 1)
        wal.flush()
        stats = wal.stats()
        assert stats.appended_records == 2
        assert stats.flushes == 1
        assert stats.flushed_lsn == stats.end_lsn == wal.end_lsn()


class TestCrashPerPolicy:
    """Kill the store around the COMMIT-append/force window."""

    def test_sync_commit_survives_power_cut(self, tmp_path):
        store = MessageStore(str(tmp_path / "s"), durability="sync")
        msg_id = _commit_one(store)
        store.simulate_crash(lose_unflushed=True)
        store.recover()
        assert store.get(msg_id) is not None
        store.close()

    def test_group_commit_survives_power_cut(self, tmp_path):
        store = MessageStore(str(tmp_path / "g"), durability="group")
        msg_id = _commit_one(store)
        store.simulate_crash(lose_unflushed=True)
        store.recover()
        assert store.get(msg_id) is not None
        store.close()

    def test_async_loses_only_the_unforced_tail(self, tmp_path):
        store = MessageStore(str(tmp_path / "a"), durability="async")
        durable_id = _commit_one(store)
        store.group_commit.drain()             # first commit made durable
        store.group_commit.pause()             # ... the next one is not
        lost_id = _commit_one(store, b"<m>lost</m>")
        assert store.get(lost_id) is not None  # acknowledged + visible
        store.simulate_crash(lose_unflushed=True)
        store.recover()
        assert store.get(durable_id) is not None
        assert store.get(lost_id) is None
        # the store is consistent and writable after the loss
        new_id = _commit_one(store, b"<m>after</m>")
        store.group_commit.drain()
        assert store.body_text(new_id) == "<m>after</m>"
        store.close()

    def test_kill_between_commit_append_and_force(self, tmp_path,
                                                  monkeypatch):
        """The exact window the pipeline moves: COMMIT is in the log
        but no force happened.  An unacknowledged transaction may
        vanish — but it must vanish *cleanly* under every policy."""
        for policy in ("sync", "group", "async"):
            store = MessageStore(str(tmp_path / policy), durability=policy)
            durable_id = _commit_one(store)
            store.group_commit.drain()
            monkeypatch.setattr(store.group_commit, "commit",
                                lambda lsn: None)   # the "kill"
            _commit_one(store, b"<m>in-flight</m>")
            store.simulate_crash(lose_unflushed=True)
            store.recover()
            assert store.get(durable_id) is not None
            assert store.message_count() == 1
            store.close()

    def test_torn_tail_after_power_cut_truncates_cleanly(self, tmp_path):
        store = MessageStore(str(tmp_path / "torn"), durability="async")
        msg_id = _commit_one(store)
        wal_path = store.wal.path
        store.close()
        # a torn frame: length says 100 bytes, only garbage follows —
        # what a power cut mid-append leaves on a real disk
        with open(wal_path, "ab") as fh:
            fh.write(b"\x64\x00\x00\x00\xde\xad\xbe\xef12345")
        reopened = MessageStore(str(tmp_path / "torn"), durability="async")
        assert reopened.get(msg_id) is not None
        assert reopened.message_count() == 1
        # recovery truncated the tear physically: post-recovery commits
        # extend the valid log and survive the next restart
        new_id = _commit_one(reopened, b"<m>after-tear</m>")
        reopened.close()
        again = MessageStore(str(tmp_path / "torn"))
        assert again.body_text(new_id) == "<m>after-tear</m>"
        assert again.message_count() == 2
        again.close()
