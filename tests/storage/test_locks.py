"""Tests for the hierarchical lock manager."""

import threading
import time

import pytest

from repro.storage import (IS, IX, DeadlockError, LockManager,
                           LockTimeoutError, S, X, compatible)


def test_compatibility_matrix_symmetry_of_shared():
    assert compatible(S, S)
    assert compatible(IS, IX)
    assert not compatible(S, X)
    assert not compatible(X, X)
    assert not compatible(IX, S)
    assert compatible(IX, IX)


def test_same_txn_reacquires_freely():
    lm = LockManager()
    lm.acquire(1, ("queue", "crm"), S)
    lm.acquire(1, ("queue", "crm"), S)
    assert lm.mode_of(1, ("queue", "crm")) == S


def test_upgrade_s_to_x():
    lm = LockManager()
    lm.acquire(1, ("queue", "crm"), S)
    lm.acquire(1, ("queue", "crm"), X)
    assert lm.mode_of(1, ("queue", "crm")) == X


def test_weaker_request_keeps_stronger_mode():
    lm = LockManager()
    lm.acquire(1, ("m", 1), X)
    lm.acquire(1, ("m", 1), S)
    assert lm.mode_of(1, ("m", 1)) == X


def test_shared_lock_by_many_txns():
    lm = LockManager()
    lm.acquire(1, ("queue", "crm"), S)
    lm.acquire(2, ("queue", "crm"), S)
    assert lm.mode_of(1, ("queue", "crm")) == S
    assert lm.mode_of(2, ("queue", "crm")) == S


def test_conflicting_lock_blocks_until_release():
    lm = LockManager()
    lm.acquire(1, ("queue", "crm"), X)
    acquired = threading.Event()

    def taker():
        lm.acquire(2, ("queue", "crm"), X, timeout=5)
        acquired.set()

    thread = threading.Thread(target=taker)
    thread.start()
    time.sleep(0.05)
    assert not acquired.is_set()
    lm.release_all(1)
    thread.join(timeout=5)
    assert acquired.is_set()
    lm.release_all(2)


def test_timeout():
    lm = LockManager()
    lm.acquire(1, ("q", "a"), X)
    with pytest.raises(LockTimeoutError):
        lm.acquire(2, ("q", "a"), X, timeout=0.05)
    lm.release_all(1)


def test_deadlock_detected():
    lm = LockManager()
    lm.acquire(1, ("r", "a"), X)
    lm.acquire(2, ("r", "b"), X)
    errors = []

    def t1():
        try:
            lm.acquire(1, ("r", "b"), X, timeout=5)
        except DeadlockError as exc:
            errors.append(exc)
            lm.release_all(1)

    def t2():
        try:
            lm.acquire(2, ("r", "a"), X, timeout=5)
        except DeadlockError as exc:
            errors.append(exc)
            lm.release_all(2)

    threads = [threading.Thread(target=t1), threading.Thread(target=t2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10)
    assert len(errors) >= 1          # at least one side must abort
    assert lm.deadlocks >= 1
    lm.release_all(1)
    lm.release_all(2)


def test_release_all_wakes_waiters():
    lm = LockManager()
    lm.acquire(1, ("q", "a"), X)
    lm.acquire(1, ("q", "b"), X)
    done = []

    def taker(resource):
        lm.acquire(2, resource, S, timeout=5)
        done.append(resource)

    threads = [threading.Thread(target=taker, args=(("q", "a"),)),
               threading.Thread(target=taker, args=(("q", "b"),))]
    for t in threads:
        t.start()
    lm.release_all(1)
    for t in threads:
        t.join(timeout=5)
    assert len(done) == 2
    lm.release_all(2)


def test_held_tracking():
    lm = LockManager()
    lm.acquire(1, ("q", "a"), S)
    lm.acquire(1, ("slice", "s", "k"), X)
    assert lm.held(1) == {("q", "a"), ("slice", "s", "k")}
    lm.release_all(1)
    assert lm.held(1) == set()


def test_intention_locks_allow_disjoint_slice_writers():
    # The §4.3 scenario: two txns write different slices of one queue.
    lm = LockManager()
    lm.acquire(1, ("queue", "orders"), IX)
    lm.acquire(2, ("queue", "orders"), IX)     # compatible
    lm.acquire(1, ("slice", "orders", "k1"), X)
    lm.acquire(2, ("slice", "orders", "k2"), X)  # no conflict
    assert lm.mode_of(2, ("slice", "orders", "k2")) == X
    lm.release_all(1)
    lm.release_all(2)


def test_queue_level_writer_blocks_slice_writers():
    lm = LockManager()
    lm.acquire(1, ("queue", "orders"), X)
    with pytest.raises(LockTimeoutError):
        lm.acquire(2, ("queue", "orders"), IX, timeout=0.05)
    lm.release_all(1)


def test_unknown_mode_rejected():
    lm = LockManager()
    with pytest.raises(ValueError):
        lm.acquire(1, ("q",), "Z")


def test_concurrent_stress_no_lost_updates():
    lm = LockManager()
    counter = {"value": 0}

    def worker(txn_base):
        for i in range(50):
            txn = txn_base * 1000 + i
            lm.acquire(txn, ("counter",), X, timeout=10)
            value = counter["value"]
            counter["value"] = value + 1
            lm.release_all(txn)

    threads = [threading.Thread(target=worker, args=(n,)) for n in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert counter["value"] == 200
