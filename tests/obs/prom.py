"""A strict little Prometheus text-format parser for the test suite.

Validates the exposition format the gateway serves: ``# HELP`` / ``# TYPE``
comment lines and ``name{labels} value`` samples.  Raises ``ValueError``
on anything malformed so tests double as format validators.
"""

import re

_SAMPLE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?P<labels>[^}]*)\})?'
    r'\s+(?P<value>[^\s]+)$')
_LABEL = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$')


def parse_prometheus(text: str) -> dict:
    """Parse exposition text into ``{name: [(labels, value), ...]}``.

    Also returns the declared types under the ``"__types__"`` key.
    """
    samples: dict = {"__types__": {}}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            if kind not in ("counter", "gauge", "histogram", "summary",
                            "untyped"):
                raise ValueError(f"bad TYPE line: {line!r}")
            samples["__types__"][name] = kind
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(f"malformed sample line: {line!r}")
        labels = {}
        raw = match.group("labels")
        if raw:
            for pair in _split_labels(raw):
                label_match = _LABEL.match(pair)
                if label_match is None:
                    raise ValueError(f"malformed label in {line!r}")
                labels[label_match.group(1)] = label_match.group(2)
        value_text = match.group("value")
        value = float("inf") if value_text == "+Inf" else float(value_text)
        samples.setdefault(match.group("name"), []).append((labels, value))
    return samples


def _split_labels(raw: str) -> list[str]:
    parts, depth_quote, current = [], False, []
    for char in raw:
        if char == '"' and (not current or current[-1] != "\\"):
            depth_quote = not depth_quote
        if char == "," and not depth_quote:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    if current:
        parts.append("".join(current))
    return parts


def total(samples: dict, name: str) -> float:
    return sum(value for _labels, value in samples.get(name, []))
