"""Structured JSON logging and the capped worker spool."""

import io
import json
import logging
import os

from repro.obs import (JsonLineFormatter, SpoolWriter,
                       configure_json_logging, get_logger, log_event,
                       pump_stream_to_spool)


def test_json_formatter_emits_parseable_lines():
    record = logging.LogRecord("demaq.test", logging.INFO, __file__, 1,
                               "booted", None, None)
    record.demaq = {"node": "node0", "port": 9101}
    entry = json.loads(JsonLineFormatter().format(record))
    assert entry["event"] == "booted"
    assert entry["level"] == "info"
    assert entry["logger"] == "demaq.test"
    assert entry["node"] == "node0"
    assert entry["port"] == 9101
    assert isinstance(entry["ts"], float)


def test_log_event_reaches_configured_stream():
    stream = io.StringIO()
    root = configure_json_logging(stream)
    try:
        log_event(get_logger("unit"), "something", count=3)
        entry = json.loads(stream.getvalue().strip().splitlines()[-1])
        assert entry["event"] == "something"
        assert entry["count"] == 3
    finally:
        for handler in list(root.handlers):
            if getattr(handler, "_demaq_json", False) \
                    and getattr(handler, "stream", None) is stream:
                root.removeHandler(handler)


def test_configure_is_idempotent_per_stream():
    stream = io.StringIO()
    root = configure_json_logging(stream)
    before = len(root.handlers)
    configure_json_logging(stream)
    try:
        assert len(root.handlers) == before
    finally:
        for handler in list(root.handlers):
            if getattr(handler, "_demaq_json", False) \
                    and getattr(handler, "stream", None) is stream:
                root.removeHandler(handler)


def test_unconfigured_logging_stays_silent(capsys):
    log_event(get_logger("quiet"), "nobody listens")
    captured = capsys.readouterr()
    assert captured.out == ""
    assert captured.err == ""


def test_spool_writer_caps_and_rotates(tmp_path):
    path = str(tmp_path / "node0.stderr")
    spool = SpoolWriter(path, cap_bytes=100)
    line = "x" * 40
    for _ in range(10):
        spool.write(line)
    spool.close()
    assert spool.rotations > 0
    assert os.path.getsize(path) <= 100
    assert os.path.getsize(spool.rotated_path) <= 100
    # at most two generations ever exist
    assert not os.path.exists(path + ".2")


def test_spool_tail_spans_rotation(tmp_path):
    path = str(tmp_path / "w.stderr")
    spool = SpoolWriter(path, cap_bytes=64)
    for index in range(12):
        spool.write(f"line-{index:02d}")
    tail = spool.tail(2000)
    spool.close()
    assert "line-11" in tail          # newest survives
    assert len(tail) <= 2000


def test_pump_stream_to_spool_copies_until_eof(tmp_path):
    path = str(tmp_path / "p.stderr")
    spool = SpoolWriter(path, cap_bytes=10_000)
    stream = io.StringIO("alpha\nbeta\n")
    thread = pump_stream_to_spool(stream, spool)
    thread.join(timeout=5.0)
    content = spool.tail(2000)
    spool.close()
    assert "alpha" in content
    assert "beta" in content
