"""Trace-id propagation over the simulated network, rules, and rebalance.

These run ungated against the :class:`repro.network.Network` simulation;
the socket/OS-process variants live in ``tests/netio/test_observability.py``
behind ``DEMAQ_NET_TESTS=1``.
"""

import pytest

from repro import ClusterServer, DemaqServer, Network, run_cluster
from repro.obs import TRACE_PROPERTY, Tracer, new_trace_id, obs_enabled
from repro.queues import VirtualClock

SENDER = """
create queue work kind basic mode persistent;
create queue toRemote kind outgoingGateway mode persistent
    endpoint "demaq://remote/inbox";
create queue netErrors kind basic mode persistent;
create errorqueue netErrors;
create rule fwd for work
    if (//job) then do enqueue <job id="{string(//job/@id)}"/> into toRemote
"""

RECEIVER = """
create queue inbox kind incomingGateway mode persistent
    endpoint "demaq://remote/inbox";
create queue done kind basic mode persistent;
create rule handle for inbox
    if (//job) then do enqueue <ack id="{string(//job/@id)}"/> into done
"""

PIPELINE = """
create queue inbox kind basic mode persistent;
create queue outbox kind basic mode persistent;
create rule relay for inbox
    if (//ping) then do enqueue <pong/> into outbox
"""


def make_pair():
    clock = VirtualClock()
    network = Network(clock)
    sender = DemaqServer(SENDER, clock=clock, network=network, name="local")
    receiver = DemaqServer(RECEIVER, clock=clock, network=network,
                           name="remote")
    return network, sender, receiver


def test_rule_derived_enqueue_inherits_trace():
    server = DemaqServer(PIPELINE)
    tid = new_trace_id()
    server.enqueue("inbox", "<ping/>", {TRACE_PROPERTY: tid})
    server.run_until_idle()
    derived = server.live_messages("outbox")[0]
    assert derived.property(TRACE_PROPERTY) == tid


def test_trace_survives_soap_round_trip():
    _, sender, receiver = make_pair()
    tid = new_trace_id()
    sender.enqueue("work", '<job id="7"/>', {TRACE_PROPERTY: tid})
    run_cluster([sender, receiver])
    incoming = receiver.live_messages("inbox")[0]
    assert incoming.property(TRACE_PROPERTY) == tid
    # ...and on through the receiver's own rule-derived message
    ack = receiver.live_messages("done")[0]
    assert ack.property(TRACE_PROPERTY) == tid


def test_delivery_failure_escalation_keeps_trace():
    network, sender, receiver = make_pair()
    network.set_down("demaq://remote/inbox")
    tid = new_trace_id()
    sender.enqueue("work", '<job id="9"/>', {TRACE_PROPERTY: tid})
    run_cluster([sender, receiver])
    errors = sender.live_messages("netErrors")
    assert len(errors) == 1
    # §3.6: the escalated error message still belongs to the same trace
    assert errors[0].property(TRACE_PROPERTY) == tid
    root = errors[0].body.root_element
    assert root.first_child("disconnectedTransport") is not None


def test_rule_error_escalation_keeps_trace():
    source = """
    create queue inbox kind basic mode persistent;
    create queue oops kind basic mode persistent;
    create rule bad for inbox errorqueue oops
        if (//ping) then do enqueue <x>{1 idiv 0}</x> into inbox
    """
    server = DemaqServer(source)
    tid = new_trace_id()
    server.enqueue("inbox", "<ping/>", {TRACE_PROPERTY: tid})
    server.run_until_idle()
    errors = server.live_messages("oops")
    assert len(errors) == 1
    assert errors[0].property(TRACE_PROPERTY) == tid


CLUSTER_APP = """
create queue jobs kind basic mode persistent;
create queue results kind basic mode persistent;
create rule work for jobs
    if (//job) then do enqueue <done id="{string(//job/@id)}"/> into results
"""


def test_trace_survives_cluster_rebalance():
    cluster = ClusterServer(CLUSTER_APP, nodes=2)
    tids = {}
    for index in range(8):
        tid = new_trace_id()
        tids[f"<job id=\"{index}\"/>"] = tid
        cluster.enqueue("jobs", f'<job id="{index}"/>',
                        {TRACE_PROPERTY: tid})
    cluster.network.pump()            # deliver, but do not process yet
    cluster.add_node()                # migrates unprocessed messages
    cluster.run_until_idle()
    for message in cluster.live_messages("jobs"):
        assert message.property(TRACE_PROPERTY) == tids[message.body_text()]
    # derived results on the (possibly new) owner keep the trace too
    done = {message.body_text(): message.property(TRACE_PROPERTY)
            for message in cluster.live_messages("results")}
    for index in range(8):
        assert done[f'<done id="{index}"/>'] == \
            tids[f'<job id="{index}"/>']


def test_single_server_records_lifecycle_spans():
    server = DemaqServer(PIPELINE, tracer=Tracer(node="solo", enabled=True))
    tid = new_trace_id()
    server.enqueue("inbox", "<ping/>", {TRACE_PROPERTY: tid})
    server.run_until_idle()
    spans = server.tracer.spans(tid)
    events = [span["event"] for span in spans]
    for expected in ("enqueued", "scheduled", "executed", "committed"):
        assert expected in events, (expected, events)
    # spans carry the node name and monotone sequence numbers
    assert all(span["node"] == "solo" for span in spans)
    seqs = [span["seq"] for span in spans]
    assert seqs == sorted(seqs)


def test_disabled_tracer_records_nothing():
    server = DemaqServer(PIPELINE, tracer=Tracer(node="solo", enabled=False))
    server.enqueue("inbox", "<ping/>", {TRACE_PROPERTY: new_trace_id()})
    server.run_until_idle()
    assert server.tracer.spans() == []


@pytest.mark.skipif(not obs_enabled(),
                    reason="cluster tracers follow DEMAQ_OBS")
def test_cluster_trace_stitches_router_and_node_spans():
    cluster = ClusterServer(CLUSTER_APP, nodes=2)
    tid = new_trace_id()
    cluster.enqueue("jobs", '<job id="1"/>', {TRACE_PROPERTY: tid})
    cluster.run_until_idle()
    spans = cluster.trace(tid)
    events = {span["event"] for span in spans}
    assert "routed" in events
    for expected in ("scheduled", "executed", "committed"):
        assert expected in events, (expected, events)
    assert len({span["node"] for span in spans}) >= 2   # router + a node


def test_scheduler_queue_backlogs_track_depth():
    server = DemaqServer(PIPELINE)
    for _ in range(3):
        server.enqueue("inbox", "<ping/>")
    assert server.scheduler.backlog_for("inbox") == 3
    assert server.scheduler.queue_backlogs() == {"inbox": 3}
    server.run_until_idle()
    assert server.scheduler.backlog_for("inbox") == 0
    assert server.scheduler.queue_backlogs() == {}
    assert server.scheduler.backlog_for("nope") == 0
