"""The metrics registry: instruments, snapshots, merging, exposition."""

import threading

from repro.obs import (LATENCY_BUCKETS, NULL_HISTOGRAM, MetricsRegistry,
                       flatten_snapshot, merge_snapshots, render_prometheus)

from .prom import parse_prometheus, total


def test_counter_increments_and_reads():
    registry = MetricsRegistry(enabled=True)
    counter = registry.counter("demaq_test_total", "help text")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5


def test_same_name_and_labels_share_the_instrument():
    registry = MetricsRegistry(enabled=True)
    a = registry.counter("demaq_test_total", queue="q1")
    b = registry.counter("demaq_test_total", queue="q1")
    c = registry.counter("demaq_test_total", queue="q2")
    a.inc()
    assert b.value == 1
    assert c.value == 0


def test_counter_is_thread_safe():
    registry = MetricsRegistry(enabled=True)
    counter = registry.counter("demaq_race_total")

    def spin():
        for _ in range(10_000):
            counter.inc()

    threads = [threading.Thread(target=spin) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert counter.value == 40_000


def test_gauge_set_inc_dec():
    registry = MetricsRegistry(enabled=True)
    gauge = registry.gauge("demaq_depth")
    gauge.set(10)
    gauge.inc(5)
    gauge.dec(3)
    assert gauge.value == 12


def test_histogram_buckets_are_cumulative():
    registry = MetricsRegistry(enabled=True)
    histogram = registry.histogram("demaq_lat_seconds",
                                   buckets=(0.01, 0.1, 1.0))
    for value in (0.005, 0.05, 0.5, 5.0):
        histogram.observe(value)
    cumulative = dict(histogram.cumulative())
    assert cumulative[0.01] == 1
    assert cumulative[0.1] == 2
    assert cumulative[1.0] == 3
    assert cumulative[float("inf")] == 4
    assert histogram.count == 4
    assert abs(histogram.sum - 5.555) < 1e-9


def test_disabled_registry_histogram_is_noop_but_counters_count():
    registry = MetricsRegistry(enabled=False)
    histogram = registry.histogram("demaq_lat_seconds")
    assert histogram is NULL_HISTOGRAM
    histogram.observe(1.0)          # must not blow up, must not record
    counter = registry.counter("demaq_semantic_total")
    counter.inc(7)
    assert counter.value == 7       # semantic counters stay live
    snapshot = registry.snapshot()
    assert "demaq_lat_seconds" not in snapshot
    assert snapshot["demaq_semantic_total"]["series"][0]["value"] == 7


def test_pull_collector_reads_live_and_is_replaceable():
    registry = MetricsRegistry(enabled=True)
    box = {"n": 3}
    registry.collect("demaq_pull_total", lambda: box["n"])
    assert flatten_snapshot(registry.snapshot())["demaq_pull_total"] == 3
    box["n"] = 9
    assert flatten_snapshot(registry.snapshot())["demaq_pull_total"] == 9
    registry.collect("demaq_pull_total", lambda: 100)   # re-register
    assert flatten_snapshot(registry.snapshot())["demaq_pull_total"] == 100


def test_failing_collector_is_skipped_not_fatal():
    registry = MetricsRegistry(enabled=True)
    registry.collect("demaq_bad_total", lambda: 1 / 0)
    registry.counter("demaq_ok_total").inc()
    snapshot = registry.snapshot()
    assert snapshot["demaq_bad_total"]["series"] == []
    assert snapshot["demaq_ok_total"]["series"][0]["value"] == 1


def test_snapshot_round_trips_histograms():
    registry = MetricsRegistry(enabled=True)
    registry.histogram("demaq_lat_seconds", buckets=(0.1, 1.0)).observe(0.5)
    row = registry.snapshot()["demaq_lat_seconds"]["series"][0]
    assert row["count"] == 1
    assert row["sum"] == 0.5
    assert [0.1, 0] in row["buckets"]
    assert [1.0, 1] in row["buckets"]


def test_merge_snapshots_sums_counters_and_buckets():
    def one():
        registry = MetricsRegistry(enabled=True)
        registry.counter("demaq_c_total", node="n").inc(2)
        registry.histogram("demaq_h_seconds", buckets=(1.0,)).observe(0.5)
        return registry.snapshot()

    merged = merge_snapshots([one(), one(), one()])
    assert merged["demaq_c_total"]["series"][0]["value"] == 6
    histogram = merged["demaq_h_seconds"]["series"][0]
    assert histogram["count"] == 3
    assert histogram["sum"] == 1.5
    assert [1.0, 3] in histogram["buckets"]


def test_merge_keeps_distinct_label_sets_apart():
    a = MetricsRegistry(enabled=True)
    a.counter("demaq_c_total", node="a").inc()
    b = MetricsRegistry(enabled=True)
    b.counter("demaq_c_total", node="b").inc(5)
    merged = merge_snapshots([a.snapshot(), b.snapshot()])
    by_node = {row["labels"]["node"]: row["value"]
               for row in merged["demaq_c_total"]["series"]}
    assert by_node == {"a": 1, "b": 5}


def test_prometheus_rendering_parses_and_totals_match():
    registry = MetricsRegistry(enabled=True)
    registry.counter("demaq_events_total", "events seen",
                     queue="orders").inc(3)
    registry.gauge("demaq_backlog", "waiting").set(7)
    registry.histogram("demaq_lat_seconds", "latency",
                       buckets=LATENCY_BUCKETS).observe(0.002)
    samples = parse_prometheus(registry.render())
    assert samples["__types__"]["demaq_events_total"] == "counter"
    assert samples["__types__"]["demaq_lat_seconds"] == "histogram"
    assert total(samples, "demaq_events_total") == 3
    assert total(samples, "demaq_backlog") == 7
    assert total(samples, "demaq_lat_seconds_count") == 1
    # histogram series end in an +Inf bucket equal to the count
    inf_rows = [v for labels, v in samples["demaq_lat_seconds_bucket"]
                if labels.get("le") == "+Inf"]
    assert inf_rows == [1]
    # labels survive rendering
    assert samples["demaq_events_total"][0][0] == {"queue": "orders"}


def test_label_values_are_escaped():
    registry = MetricsRegistry(enabled=True)
    registry.counter("demaq_esc_total", rule='we"ird\nvalue').inc()
    rendered = render_prometheus(registry.snapshot())
    samples = parse_prometheus(rendered)
    assert total(samples, "demaq_esc_total") == 1


def test_flatten_snapshot_sums_across_series():
    registry = MetricsRegistry(enabled=True)
    registry.counter("demaq_c_total", node="a").inc(1)
    registry.counter("demaq_c_total", node="b").inc(2)
    flat = flatten_snapshot(registry.snapshot())
    assert flat["demaq_c_total"] == 3
