"""Tests for static application validation."""

import pytest

from repro.qdl import ValidationError, compile_application, parse_qdl, validate

BASE = """
create queue crm kind basic mode persistent;
create queue customer kind basic mode persistent;
create property requestID as xs:string fixed
    queue crm, customer value //requestID;
create slicing requestMsgs on requestID;
"""


def check(extra, match):
    with pytest.raises(ValidationError, match=match):
        compile_application(BASE + extra)


def test_valid_application_passes():
    app = compile_application(BASE + """
        create rule r for crm
            if (//x) then do enqueue <y/> into customer
    """)
    assert app.rule_names() == ["r"]


def test_rule_target_must_exist():
    check("create rule r for nowhere if (//x) then do enqueue <y/> into crm",
          "neither a queue nor a slicing")


def test_enqueue_target_must_exist():
    check("create rule r for crm if (//x) then do enqueue <y/> into void",
          "unknown queue 'void'")


def test_slicing_property_must_exist():
    with pytest.raises(ValidationError, match="property 'ghost'"):
        compile_application("""
            create queue q kind basic mode persistent;
            create slicing s on ghost
        """)


def test_property_queue_must_exist():
    with pytest.raises(ValidationError, match="queue 'ghost'"):
        compile_application("""
            create queue q kind basic mode persistent;
            create property p as xs:string queue ghost value //x
        """)


def test_slice_functions_only_on_slicing_rules():
    check("create rule r for crm if (qs:slice()) then "
          "do enqueue <y/> into customer",
          "only available in rules on slicings")
    # and they are fine on slicing rules
    app = compile_application(BASE + """
        create rule r for requestMsgs
            if (qs:slice()[//x] and qs:slicekey() = 'k') then do reset
    """)
    assert app.rules[0].target == "requestMsgs"


def test_bare_reset_only_on_slicing_rules():
    check("create rule r for crm if (//x) then do reset",
          "bare 'do reset'")


def test_parameterized_reset_of_unknown_slicing():
    check("create rule r for crm if (//x) then do reset(ghost, 'k')",
          "unknown slicing 'ghost'")


def test_parameterized_reset_allowed_on_queue_rules():
    app = compile_application(BASE + """
        create rule r for crm
            if (//x) then do reset(requestMsgs, string(//requestID))
    """)
    assert app.rules[0].name == "r"


def test_fixed_property_cannot_be_set_explicitly():
    check("create rule r for crm if (//x) then "
          "do enqueue <y/> into customer with requestID value 'boom'",
          "fixed and may not be set")


def test_rule_error_queue_must_exist():
    check("create rule r for crm errorqueue ghosts "
          "if (//x) then do enqueue <y/> into customer",
          "error queue 'ghosts'")


def test_queue_error_queue_must_exist():
    with pytest.raises(ValidationError, match="error queue 'ghosts'"):
        compile_application(
            "create queue q kind basic mode persistent errorqueue ghosts")


def test_ws_rm_requires_persistence():
    # paper §2.1.2: reliable messaging needs a persistent queue
    with pytest.raises(ValidationError, match="requires a persistent"):
        compile_application("""
            create queue out kind outgoingGateway mode transient
                interface s.wsdl port P
                using WS-ReliableMessaging policy pol.xml
        """)


def test_gateway_needs_interface_or_endpoint():
    with pytest.raises(ValidationError, match="interface or endpoint"):
        compile_application(
            "create queue out kind outgoingGateway mode persistent")
    app = compile_application("""
        create queue out kind outgoingGateway mode persistent
            endpoint "demaq://remote/in"
    """)
    assert app.queues["out"].endpoint == "demaq://remote/in"


def test_interface_only_on_gateways():
    with pytest.raises(ValidationError, match="only valid on gateway"):
        compile_application("""
            create queue q kind basic mode persistent
                interface x.wsdl port P
        """)


def test_enqueue_into_incoming_gateway_rejected():
    with pytest.raises(ValidationError, match="incoming gateway"):
        compile_application("""
            create queue inbox kind incomingGateway mode persistent
                endpoint "demaq://self/inbox";
            create queue q kind basic mode persistent;
            create rule r for q
                if (//x) then do enqueue <y/> into inbox
        """)


def test_system_property_shadowing_rejected():
    with pytest.raises(ValidationError, match="shadows a system property"):
        compile_application("""
            create queue q kind basic mode persistent;
            create property creationTime as xs:string queue q value //x
        """)


def test_bad_schema_reported():
    with pytest.raises(ValidationError, match="bad schema"):
        compile_application("""
            create queue q kind basic mode persistent
                schema "<notaschema/>"
        """)


def test_good_schema_compiled():
    app = compile_application("""
        create queue q kind basic mode persistent
            schema "<schema><element name='ping' type='xs:string'/></schema>"
    """)
    assert app.queues["q"].schema is not None


def test_slicing_name_collision_with_queue():
    with pytest.raises(ValidationError, match="collides"):
        compile_application("""
            create queue s kind basic mode persistent;
            create property p as xs:string queue s value //x;
            create slicing s on p
        """)


def test_index_requires_defined_queue_and_property():
    with pytest.raises(ValidationError, match="queue 'ghost'"):
        compile_application("""
            create queue q kind basic mode persistent;
            create property p as xs:string queue q value //x;
            create index on queue ghost property p
        """)
    with pytest.raises(ValidationError, match="property 'missing'"):
        compile_application("""
            create queue q kind basic mode persistent;
            create index on queue q property missing
        """)


def test_index_requires_property_binding_on_queue():
    with pytest.raises(ValidationError, match="no binding on queue"):
        compile_application("""
            create queue q kind basic mode persistent;
            create queue other kind basic mode persistent;
            create property p as xs:string queue other value //x;
            create index on queue q property p
        """)


def test_duplicate_index_pair_rejected():
    with pytest.raises(ValidationError, match="duplicate index on"):
        compile_application("""
            create queue q kind basic mode persistent;
            create property p as xs:string queue q value //x;
            create index i1 on queue q property p;
            create index i2 on queue q property p
        """)


def test_system_error_queue_checked():
    with pytest.raises(ValidationError, match="system error queue"):
        compile_application("create errorqueue ghosts")


def test_all_findings_collected():
    try:
        compile_application("""
            create queue q kind basic mode persistent;
            create rule r for nowhere if (//x) then do enqueue <y/> into void
        """)
    except ValidationError as exc:
        assert len(exc.findings) == 2
    else:  # pragma: no cover
        pytest.fail("expected ValidationError")


def test_validate_is_idempotent():
    app = parse_qdl(BASE)
    validate(app)
    validate(app)
