"""Tests for QDL statement parsing."""

import pytest

from repro.qdl import QueueKind, QueueMode, parse_qdl
from repro.xquery import ast
from repro.xquery.errors import StaticError


def test_basic_queue_from_paper():
    app = parse_qdl("create queue finance kind basic mode persistent")
    queue = app.queues["finance"]
    assert queue.kind is QueueKind.BASIC
    assert queue.mode is QueueMode.PERSISTENT
    assert queue.persistent


def test_transient_queue():
    app = parse_qdl("create queue scratch kind basic mode transient")
    assert not app.queues["scratch"].persistent


def test_gateway_queue_from_paper():
    app = parse_qdl("""
        create queue supplier kind outgoingGateway mode persistent
            interface supplier.wsdl port CapacityRequestPort
            using WS-ReliableMessaging policy wsrmpol.xml
            using WS-Security policy wssecpol.xml
    """)
    queue = app.queues["supplier"]
    assert queue.kind is QueueKind.OUTGOING_GATEWAY
    assert queue.interface == "supplier.wsdl"
    assert queue.port == "CapacityRequestPort"
    assert [e.name for e in queue.extensions] == [
        "WS-ReliableMessaging", "WS-Security"]
    assert queue.extensions[0].policy == "wsrmpol.xml"
    assert queue.is_gateway


def test_echo_queue_from_paper():
    app = parse_qdl("create queue echoQueue kind echo mode persistent")
    assert app.queues["echoQueue"].kind is QueueKind.ECHO


def test_queue_priority_and_schema():
    app = parse_qdl("""
        create queue hot kind basic mode transient priority 9
            schema "<schema><element name='ping' type='xs:string'/></schema>"
    """)
    queue = app.queues["hot"]
    assert queue.priority == 9
    assert "ping" in queue.schema_source


def test_negative_priority():
    app = parse_qdl(
        "create queue cold kind basic mode transient priority -3")
    assert app.queues["cold"].priority == -3


def test_queue_error_queue_clause():
    app = parse_qdl("""
        create queue errs kind basic mode persistent;
        create queue crm kind basic mode persistent errorqueue errs
    """)
    assert app.queues["crm"].error_queue == "errs"


def test_unknown_kind_or_mode():
    with pytest.raises(StaticError, match="kind"):
        parse_qdl("create queue q kind fancy mode persistent")
    with pytest.raises(StaticError, match="mode"):
        parse_qdl("create queue q kind basic mode sometimes")


def test_inherited_property_from_paper():
    app = parse_qdl("""
        create queue crm kind basic mode persistent;
        create queue finance kind basic mode persistent;
        create queue legal kind basic mode persistent;
        create queue customer kind basic mode persistent;
        create property isVIPorder as xs:boolean inherited
            queue crm, finance, legal, customer value false()
    """)
    prop = app.properties["isVIPorder"]
    assert prop.inherited and not prop.fixed
    assert prop.type_name == "xs:boolean"
    binding = prop.binding_for("legal")
    assert binding is not None
    assert binding.queues == ["crm", "finance", "legal", "customer"]


def test_fixed_computed_property_from_paper():
    app = parse_qdl("""
        create queue order kind basic mode persistent;
        create queue confirmation kind basic mode persistent;
        create property orderID as xs:string fixed
            queue order value //orderID
            queue confirmation value /confirmedOrder/ID
    """)
    prop = app.properties["orderID"]
    assert prop.fixed
    assert len(prop.bindings) == 2
    assert prop.binding_for("order").value_source == "//orderID"
    assert prop.binding_for("confirmation").value_source == "/confirmedOrder/ID"
    assert prop.binding_for("elsewhere") is None
    assert isinstance(prop.bindings[0].value, ast.Expr)


def test_property_requires_binding():
    with pytest.raises(StaticError, match="binding"):
        parse_qdl("create property p as xs:string fixed")


def test_slicing_from_paper():
    app = parse_qdl("""
        create queue crm kind basic mode persistent;
        create property requestID as xs:string fixed
            queue crm value //requestID;
        create slicing requestMsgs on requestID
    """)
    slicing = app.slicings["requestMsgs"]
    assert slicing.property_name == "requestID"


def test_rule_with_errorqueue():
    app = parse_qdl("""
        create queue crm kind basic mode persistent;
        create queue crmErrors kind basic mode persistent;
        create queue customer kind basic mode persistent;
        create rule confirmOrder for crm errorqueue crmErrors
            if (//customerOrder) then
                do enqueue <confirmation>{//orderID}</confirmation>
                    into customer
    """)
    rule = app.rules[0]
    assert rule.name == "confirmOrder"
    assert rule.target == "crm"
    assert rule.error_queue == "crmErrors"
    assert "customerOrder" in rule.body_source


def test_statements_without_semicolons():
    app = parse_qdl("""
        create queue a kind basic mode persistent
        create queue b kind basic mode persistent
        create rule r for a if (//x) then do enqueue <y/> into b
        create rule s for b if (//y) then do enqueue <x/> into a
    """)
    assert set(app.queues) == {"a", "b"}
    assert app.rule_names() == ["r", "s"]


def test_module_error_queue():
    app = parse_qdl("""
        create queue sysErrors kind basic mode persistent;
        create errorqueue sysErrors
    """)
    assert app.system_error_queue == "sysErrors"


def test_collection_statement():
    app = parse_qdl("create collection pricelists")
    assert "pricelists" in app.collections


def test_duplicate_definitions_rejected():
    with pytest.raises(StaticError, match="duplicate queue"):
        parse_qdl("""
            create queue a kind basic mode persistent;
            create queue a kind basic mode transient
        """)
    with pytest.raises(StaticError, match="duplicate rule"):
        parse_qdl("""
            create queue a kind basic mode persistent;
            create rule r for a if (//x) then do enqueue <y/> into a;
            create rule r for a if (//y) then do enqueue <z/> into a
        """)


def test_rules_for_lookup():
    app = parse_qdl("""
        create queue a kind basic mode persistent;
        create rule r1 for a if (//x) then do enqueue <y/> into a;
        create rule r2 for a if (//y) then do enqueue <z/> into a
    """)
    assert [r.name for r in app.rules_for("a")] == ["r1", "r2"]
    assert app.rules_for("b") == []


def test_create_index_parses():
    app = parse_qdl("""
        create queue orders kind basic mode persistent;
        create property customer as xs:string queue orders value //customerID;
        create index on queue orders property customer
    """)
    index = app.indexes["orders_customer_idx"]
    assert index.queue == "orders"
    assert index.property_name == "customer"
    assert app.index_on("orders", "customer") is index
    assert app.index_on("orders", "other") is None


def test_create_named_index():
    app = parse_qdl("""
        create queue orders kind basic mode persistent;
        create property customer as xs:string queue orders value //customerID;
        create index byCust on queue orders property customer
    """)
    assert list(app.indexes) == ["byCust"]
    assert app.indexed_properties("orders") == ["customer"]


def test_duplicate_index_name_rejected():
    with pytest.raises(StaticError, match="duplicate index"):
        parse_qdl("""
            create queue q kind basic mode persistent;
            create property p as xs:string queue q value //x;
            create index i on queue q property p;
            create index i on queue q property p
        """)


def test_index_statement_requires_on_queue_property():
    with pytest.raises(StaticError):
        parse_qdl("create index on orders property customer")
    with pytest.raises(StaticError):
        parse_qdl("create index on queue orders customer")


def test_garbage_statement():
    with pytest.raises(StaticError, match="expected"):
        parse_qdl("create gizmo x")
    with pytest.raises(StaticError):
        parse_qdl("drop queue x")
