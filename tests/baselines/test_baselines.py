"""Tests for the comparison baselines (BPEL-like engine, transformation
chain) used by the benchmark harness."""

import pytest

from repro.baselines import (BPELLikeEngine, ImperativePipeline,
                             dict_to_rows, dict_to_xml, rows_to_dict,
                             xml_to_dict)
from repro.xmldm import parse, serialize


def correlate(document):
    node = document.root_element.first_child("id")
    return node.text if node is not None else "anonymous"


def two_step_handler(context, message):
    context.variables[f"msg{context.step}"] = message
    context.step += 1
    return context.step >= 2


def test_bpel_instances_complete():
    engine = BPELLikeEngine(two_step_handler, correlate, max_resident=10)
    engine.deliver("<m><id>a</id></m>")
    assert engine.completed == 0
    engine.deliver("<m><id>a</id></m>")
    assert engine.completed == 1
    assert engine.active_instances() == 0


def test_bpel_instances_isolated():
    engine = BPELLikeEngine(two_step_handler, correlate, max_resident=10)
    engine.deliver("<m><id>a</id></m>")
    engine.deliver("<m><id>b</id></m>")
    assert engine.completed == 0
    assert engine.active_instances() == 2


def test_dehydration_kicks_in_beyond_resident_limit():
    engine = BPELLikeEngine(two_step_handler, correlate, max_resident=2)
    for key in ("a", "b", "c", "d"):
        engine.deliver(f"<m><id>{key}</id></m>")
    assert engine.store.dehydrations >= 2
    # finishing a dehydrated instance requires rehydration
    engine.deliver("<m><id>a</id></m>")
    assert engine.store.rehydrations >= 1
    assert engine.completed == 1


def test_rehydrated_context_preserves_variables():
    engine = BPELLikeEngine(two_step_handler, correlate, max_resident=1)
    engine.deliver("<m><id>a</id><payload>hello</payload></m>")
    engine.deliver("<m><id>b</id></m>")      # evicts a
    assert "a" in engine.store
    context = engine._acquire("a")
    assert context.step == 1
    assert context.variables["msg0"].root_element.first_child(
        "payload").text == "hello"


def test_xml_dict_round_trip():
    doc = parse("<order><id>1</id><items><item>a</item><item>b</item>"
                "</items></order>")
    data = xml_to_dict(doc)
    assert data == {"order": {"id": "1", "items": {"item": ["a", "b"]}}}
    back = dict_to_xml(data)
    assert xml_to_dict(back) == data


def test_rows_round_trip():
    data = {"order": {"id": "1", "customer": {"name": "acme"}}}
    rows = dict_to_rows(data)
    assert ("/order/id", "1") in rows
    assert rows_to_dict(rows) == data


def test_pipeline_zero_tiers_is_identity_logic():
    pipeline = ImperativePipeline(lambda d: d, tiers=0)
    out = pipeline.handle("<a><b>x</b></a>")
    assert parse(out).root_element.first_child("b").text == "x"
    assert pipeline.transformations == 2     # in + out only


def test_pipeline_transformation_count_grows_with_tiers():
    counts = []
    for tiers in (0, 1, 2, 4):
        pipeline = ImperativePipeline(lambda d: d, tiers=tiers)
        pipeline.handle("<a><b>x</b></a>")
        counts.append(pipeline.transformations)
    assert counts == sorted(counts)
    assert counts[-1] > counts[0]


def test_pipeline_preserves_business_result_across_tiers():
    def logic(data):
        order = data["order"]
        return {"ack": {"ref": order["id"]}}

    results = set()
    for tiers in (0, 1, 3, 5):
        pipeline = ImperativePipeline(logic, tiers=tiers)
        results.add(pipeline.handle("<order><id>42</id></order>"))
    assert results == {"<ack><ref>42</ref></ack>"}


def test_pipeline_rejects_negative_tiers():
    with pytest.raises(ValueError):
        ImperativePipeline(lambda d: d, tiers=-1)
