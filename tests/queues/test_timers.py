"""Tests for clocks and the echo service."""

import pytest

from repro.queues import EchoService, RealClock, VirtualClock


def test_virtual_clock_advances():
    clock = VirtualClock(start=100.0)
    assert clock.now() == 100.0
    clock.advance(5)
    assert clock.now() == 105.0


def test_virtual_clock_rejects_negative():
    clock = VirtualClock()
    with pytest.raises(ValueError):
        clock.advance(-1)


def test_now_datetime_matches_epoch():
    clock = VirtualClock(start=1_000_000.0)
    assert clock.now_datetime().epoch() == 1_000_000.0


def test_real_clock_monotone_enough():
    clock = RealClock()
    assert clock.now() > 0


def test_echo_delivery_after_timeout():
    clock = VirtualClock()
    echo = EchoService(clock)
    echo.schedule(1, 10.0, "target")
    assert echo.due_deliveries() == []
    clock.advance(9.999)
    assert echo.due_deliveries() == []
    clock.advance(0.001)
    assert echo.due_deliveries() == [(1, "target")]
    assert echo.due_deliveries() == []      # delivered once


def test_echo_ordering_by_due_time():
    clock = VirtualClock()
    echo = EchoService(clock)
    echo.schedule(1, 30.0, "a")
    echo.schedule(2, 10.0, "b")
    echo.schedule(3, 20.0, "c")
    clock.advance(60)
    assert echo.due_deliveries() == [(2, "b"), (3, "c"), (1, "a")]


def test_echo_zero_timeout_due_immediately():
    clock = VirtualClock()
    echo = EchoService(clock)
    echo.schedule(5, 0.0, "t")
    assert echo.due_deliveries() == [(5, "t")]


def test_echo_negative_timeout_clamped():
    clock = VirtualClock()
    echo = EchoService(clock)
    echo.schedule(5, -3.0, "t")
    assert echo.due_deliveries() == [(5, "t")]


def test_next_due_and_pending():
    clock = VirtualClock(start=0.0)
    echo = EchoService(clock)
    assert echo.next_due() is None
    echo.schedule(1, 15.0, "t")
    echo.schedule(2, 5.0, "t")
    assert echo.next_due() == 5.0
    assert echo.pending_count() == 2


def test_fifo_among_same_due_time():
    clock = VirtualClock()
    echo = EchoService(clock)
    echo.schedule(1, 1.0, "a")
    echo.schedule(2, 1.0, "b")
    clock.advance(1)
    assert echo.due_deliveries() == [(1, "a"), (2, "b")]
