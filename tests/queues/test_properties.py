"""Tests for property resolution (paper §2.2 semantics)."""

import pytest

from repro.qdl import parse_qdl
from repro.queues import PropertyError, PropertyResolver
from repro.xmldm import parse
from repro.xquery.atomics import XSDateTime

APP = parse_qdl("""
    create queue crm kind basic mode persistent;
    create queue finance kind basic mode persistent;
    create queue legal kind basic mode persistent;
    create property orderID as xs:string fixed
        queue crm value //orderID
        queue finance value /payment/order;
    create property isVIP as xs:boolean inherited
        queue crm, finance, legal value false();
    create property amount as xs:integer
        queue finance value //amount
""")


@pytest.fixture()
def resolver():
    return PropertyResolver(APP)


def test_fixed_property_computed_from_body(resolver):
    body = parse("<order><orderID>o-1</orderID></order>")
    props = resolver.resolve("crm", body)
    assert props["orderID"] == "o-1"


def test_fixed_property_per_queue_expression(resolver):
    body = parse("<payment><order>o-2</order></payment>")
    props = resolver.resolve("finance", body)
    assert props["orderID"] == "o-2"


def test_fixed_property_rejects_explicit(resolver):
    body = parse("<order><orderID>o-1</orderID></order>")
    with pytest.raises(PropertyError, match="fixed"):
        resolver.resolve("crm", body, explicit={"orderID": "boom"})


def test_fixed_property_absent_when_expression_empty(resolver):
    body = parse("<order/>")
    props = resolver.resolve("crm", body)
    assert "orderID" not in props


def test_default_value_expression(resolver):
    body = parse("<anything/>")
    props = resolver.resolve("legal", body)
    assert props["isVIP"] is False


def test_explicit_overrides_default(resolver):
    body = parse("<anything/>")
    props = resolver.resolve("legal", body, explicit={"isVIP": "true"})
    assert props["isVIP"] is True     # cast to xs:boolean


def test_inherited_beats_default(resolver):
    body = parse("<anything/>")
    props = resolver.resolve("legal", body,
                             trigger_properties={"isVIP": True})
    assert props["isVIP"] is True


def test_explicit_beats_inherited(resolver):
    body = parse("<anything/>")
    props = resolver.resolve(
        "legal", body, explicit={"isVIP": False},
        trigger_properties={"isVIP": True})
    assert props["isVIP"] is False


def test_non_inherited_property_not_propagated(resolver):
    body = parse("<x/>")
    props = resolver.resolve("finance", body,
                             trigger_properties={"amount": 99})
    assert "amount" not in props      # //amount empty, no inheritance


def test_typed_computed_value(resolver):
    body = parse("<payment><amount>250</amount></payment>")
    props = resolver.resolve("finance", body)
    assert props["amount"] == 250
    assert isinstance(props["amount"], int)


def test_type_cast_failure_raises(resolver):
    body = parse("<payment><amount>lots</amount></payment>")
    with pytest.raises(PropertyError, match="amount"):
        resolver.resolve("finance", body)


def test_multivalued_expression_rejected(resolver):
    body = parse("<o><orderID>1</orderID><orderID>2</orderID></o>")
    with pytest.raises(PropertyError, match="2 values"):
        resolver.resolve("crm", body)


def test_adhoc_explicit_properties_kept(resolver):
    body = parse("<x/>")
    props = resolver.resolve("crm", body,
                             explicit={"Sender": "http://ws.chem.invalid/"})
    assert props["Sender"] == "http://ws.chem.invalid/"


def test_system_values_merged_and_win(resolver):
    body = parse("<x/>")
    stamp = XSDateTime.parse("2026-06-12T00:00:00Z")
    props = resolver.resolve("crm", body,
                             explicit={"creationTime": "fake"},
                             system={"creationTime": stamp})
    assert props["creationTime"] == stamp


def test_inheritable_subset(resolver):
    trigger = {"isVIP": True, "orderID": "o-9", "random": 1}
    assert resolver.inheritable(trigger) == {"isVIP": True}


def test_properties_unbound_queue_empty(resolver):
    body = parse("<order><orderID>o-1</orderID></order>")
    props = resolver.resolve("legal", body)
    assert "orderID" not in props     # orderID not defined on legal


def test_shared_value_expressions_evaluate_once():
    """The resolved-value cache: several consumers binding the same
    expression on one queue cost a single evaluation per message."""
    app = parse_qdl("""
        create queue q kind basic mode persistent;
        create property a as xs:string queue q value //customerID;
        create property b as xs:string queue q value //customerID;
        create property c as xs:string queue q value //other
    """)
    resolver = PropertyResolver(app)
    body = parse("<m><customerID>c1</customerID><other>x</other></m>")
    props = resolver.resolve("q", body)
    assert props["a"] == props["b"] == "c1"
    assert props["c"] == "x"
    assert resolver.evaluations == 2      # //customerID once, //other once


def test_cache_scoped_per_message():
    app = parse_qdl("""
        create queue q kind basic mode persistent;
        create property a as xs:string queue q value //customerID
    """)
    resolver = PropertyResolver(app)
    first = resolver.resolve("q", parse("<m><customerID>c1</customerID></m>"))
    second = resolver.resolve("q", parse("<m><customerID>c2</customerID></m>"))
    assert first["a"] == "c1" and second["a"] == "c2"
    assert resolver.evaluations == 2


def test_explicit_value_skips_evaluation():
    app = parse_qdl("""
        create queue q kind basic mode persistent;
        create property a as xs:string queue q value //customerID
    """)
    resolver = PropertyResolver(app)
    props = resolver.resolve("q", parse("<m/>"), explicit={"a": "forced"})
    assert props["a"] == "forced"
    assert resolver.evaluations == 0
