"""Shared fixtures for the XQuery engine tests."""

import pytest

from repro.xmldm import parse
from repro.xquery import evaluate_expression

ORDER_DOC = """\
<order priority="high">
  <id>42</id>
  <customer vip="true">acme</customer>
  <items>
    <item sku="A" qty="2"><price>10.5</price></item>
    <item sku="B" qty="1"><price>20</price></item>
    <item sku="C" qty="5"><price>3</price></item>
  </items>
  <note>rush</note>
</order>"""


@pytest.fixture()
def order():
    return parse(ORDER_DOC)


@pytest.fixture()
def q(order):
    """Evaluate an expression against the order document."""

    def run(expression, **kwargs):
        return evaluate_expression(expression, context_item=order, **kwargs)

    return run


@pytest.fixture()
def q1(q):
    """Evaluate and unwrap a singleton result."""

    def run(expression, **kwargs):
        result = q(expression, **kwargs)
        assert len(result) == 1, f"expected singleton, got {result!r}"
        return result[0]

    return run
