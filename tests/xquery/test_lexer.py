"""Tests for the XQuery tokenizer."""

import pytest

from repro.xquery.errors import StaticError
from repro.xquery.lexer import (DECIMAL, DOUBLE, EOF, INTEGER, NAME, STRING,
                                SYMBOL, VARIABLE, Lexer)


def tokens(text):
    lexer = Lexer(text)
    out = []
    while True:
        token = lexer.next_token()
        if token.type == EOF:
            return out
        out.append((token.type, token.value))


def test_names_and_symbols():
    assert tokens("foo/bar") == [(NAME, "foo"), (SYMBOL, "/"), (NAME, "bar")]


def test_prefixed_qname_is_one_token():
    assert tokens("qs:message()") == [
        (NAME, "qs:message"), (SYMBOL, "("), (SYMBOL, ")")]


def test_axis_double_colon_not_a_prefix():
    assert tokens("child::x") == [
        (NAME, "child"), (SYMBOL, "::"), (NAME, "x")]


def test_variables():
    assert tokens("$x + $long-name") == [
        (VARIABLE, "x"), (SYMBOL, "+"), (VARIABLE, "long-name")]


def test_numbers():
    assert tokens("1 2.5 .5 3e2 1.5E-2") == [
        (INTEGER, "1"), (DECIMAL, "2.5"), (DECIMAL, ".5"),
        (DOUBLE, "3e2"), (DOUBLE, "1.5E-2")]


def test_number_then_parent_abbreviation():
    assert tokens("1..") == [(INTEGER, "1"), (SYMBOL, "..")]


def test_strings_with_escapes():
    assert tokens('"a""b"') == [(STRING, 'a"b')]
    assert tokens("'a''b'") == [(STRING, "a'b")]


def test_strings_with_entities():
    assert tokens('"&lt;&amp;&#65;"') == [(STRING, "<&A")]


def test_unterminated_string():
    with pytest.raises(StaticError):
        tokens('"abc')


def test_comments_skipped_and_nested():
    assert tokens("1 (: outer (: inner :) still :) 2") == [
        (INTEGER, "1"), (INTEGER, "2")]


def test_unterminated_comment():
    with pytest.raises(StaticError):
        tokens("1 (: never closed")


def test_multi_char_operators():
    assert tokens("a != b <= c >= d << e") == [
        (NAME, "a"), (SYMBOL, "!="), (NAME, "b"), (SYMBOL, "<="),
        (NAME, "c"), (SYMBOL, ">="), (NAME, "d"), (SYMBOL, "<<"),
        (NAME, "e")]


def test_slash_vs_double_slash():
    assert tokens("//a/b") == [
        (SYMBOL, "//"), (NAME, "a"), (SYMBOL, "/"), (NAME, "b")]


def test_assign_operator():
    assert tokens("$x := 1") == [
        (VARIABLE, "x"), (SYMBOL, ":="), (INTEGER, "1")]


def test_unexpected_character():
    with pytest.raises(StaticError, match="unexpected character"):
        tokens("a ~ b")


def test_name_with_dots_and_dashes():
    assert tokens("wsrm-pol.v2") == [(NAME, "wsrm-pol.v2")]


def test_line_column_tracking():
    lexer = Lexer("a\n  b")
    first = lexer.next_token()
    second = lexer.next_token()
    assert (first.line, first.column) == (1, 1)
    assert (second.line, second.column) == (2, 3)
