"""Tests for direct and computed constructors."""

import pytest

from repro.xmldm import Attribute, Comment, Element, Text, serialize
from repro.xquery import evaluate_expression as E
from repro.xquery.errors import StaticError


def one(expression, **kwargs):
    result = E(expression, **kwargs)
    assert len(result) == 1
    return result[0]


def test_empty_element():
    element = one("<a/>")
    assert isinstance(element, Element)
    assert element.children == []


def test_literal_content_and_attributes():
    element = one('<a x="1">text</a>')
    assert element.attribute_value("x") == "1"
    assert element.text == "text"


def test_nested_literal_elements():
    element = one("<a><b><c/></b></a>")
    assert serialize(element) == "<a><b><c/></b></a>"


def test_enclosed_expression_in_content(q):
    element = one("<total>{1 + 2}</total>")
    assert element.text == "3"


def test_adjacent_atomics_space_separated():
    element = one("<s>{1, 2, 3}</s>")
    assert element.text == "1 2 3"


def test_node_content_is_copied(order):
    element = E("<wrap>{//id}</wrap>", context_item=order)[0]
    inner = element.child_elements("id")[0]
    original = order.root_element.first_child("id")
    assert inner is not original
    assert inner.string_value == original.string_value


def test_mixed_text_and_enclosed(order):
    element = E("<m>id is {//id}!</m>", context_item=order)[0]
    assert element.string_value == "id is 42!"


def test_paper_fig5_customer_info(order):
    # The let-bound constructor pattern from Example 3.1
    result = E("""
        let $customerInfo :=
            <requestCustomerInfo>
              {//id} {//customer}
            </requestCustomerInfo>
        return $customerInfo
    """, context_item=order)
    element = result[0]
    assert element.name.local_name == "requestCustomerInfo"
    assert [c.name.local_name for c in element.child_elements()] == [
        "id", "customer"]


def test_attribute_value_template(order):
    element = E('<a id="x{//id}y"/>', context_item=order)[0]
    assert element.attribute_value("id") == "x42y"


def test_attribute_value_template_sequence():
    element = one('<a v="{1, 2}"/>')
    assert element.attribute_value("v") == "1 2"


def test_curly_brace_escapes():
    element = one("<a>{{literal}}</a>")
    assert element.text == "{literal}"
    attr = one('<a v="{{x}}"/>')
    assert attr.attribute_value("v") == "{x}"


def test_entities_in_constructor():
    element = one("<a>&lt;&amp;&gt;</a>")
    assert element.text == "<&>"


def test_cdata_in_constructor():
    element = one("<a><![CDATA[{not an expr}]]></a>")
    assert element.text == "{not an expr}"


def test_comment_in_constructor():
    element = one("<a><!--remark--></a>")
    assert isinstance(element.children[0], Comment)
    assert element.children[0].value == "remark"


def test_namespace_declaration_on_constructor():
    element = one('<p:a xmlns:p="urn:x"><p:b/></p:a>')
    assert element.name.namespace_uri == "urn:x"
    assert element.child_elements()[0].name.namespace_uri == "urn:x"


def test_constructed_tree_is_navigable():
    assert E("<a><b>1</b><b>2</b></a>//b[2]/text()")[0].value == "2"


def test_constructor_in_flwor(order):
    result = E("""
        for $i in //item
        return <line sku="{$i/@sku}">{string($i/price)}</line>
    """, context_item=order)
    assert [e.attribute_value("sku") for e in result] == ["A", "B", "C"]
    assert [e.text for e in result] == ["10.5", "20", "3"]


def test_attribute_node_content_attaches(order):
    element = E("<a>{//item[1]/@sku}</a>", context_item=order)[0]
    assert element.attribute_value("sku") == "A"
    assert element.children == []


def test_computed_element_constructor():
    element = one("element foo {1 + 1}")
    assert element.name.local_name == "foo"
    assert element.text == "2"


def test_computed_element_dynamic_name():
    element = one("element {concat('a', 'b')} {()}")
    assert element.name.local_name == "ab"


def test_computed_attribute_constructor():
    attr = one("attribute priority {3}")
    assert isinstance(attr, Attribute)
    assert attr.value == "3"


def test_text_constructor():
    node = one("text {'hi'}")
    assert isinstance(node, Text)
    assert node.value == "hi"
    assert E("text {()}") == []


def test_mismatched_constructor_tags():
    with pytest.raises(StaticError, match="mismatched"):
        E("<a></b>")


def test_unterminated_constructor():
    with pytest.raises(StaticError):
        E("<a><b></a>")


def test_unescaped_brace_rejected():
    with pytest.raises(StaticError):
        E("<a>}</a>")


def test_expression_after_constructor_continues():
    # token mode must resume correctly after char-mode scanning
    assert one("count((<a/>, <b/>))") == 2
    assert one("<a>1</a> = 1") is True
