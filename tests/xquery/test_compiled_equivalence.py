"""Differential tests: the closure-compiled backend must be
observationally identical to the reference interpreter.

Three layers of evidence:

* a curated corner-case expression list (operator edge cases, axis
  order, errors, update primitives);
* hypothesis-generated random expressions over random documents,
  comparing results, raised errors (type and code), and pending update
  lists;
* every workload-generator scenario executed end-to-end on a
  ``DemaqServer`` under each backend, comparing queue contents and
  executor statistics.

Node-constructor operands are kept out of the set-operation templates:
document order across freshly constructed fragments is identity-based
and therefore unspecified, so both backends are "right" with different
answers there.
"""

import os

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro import DemaqServer
from repro.xmldm import parse, serialize
from repro.xquery import (BACKEND_ENV_VAR, DynamicContext, compile_expr,
                          compile_expression, evaluate)
from repro.xquery.errors import StaticError
from repro.xquery.updates import EnqueuePrimitive, PendingUpdateList
from repro.workloads import (offer_request, order_message,
                             payment_confirmation, procurement_application,
                             request_stream)

# -- outcome normalization ----------------------------------------------------

def _norm_item(item):
    if hasattr(item, "string_value"):      # Node
        return ("node", type(item).__name__, serialize(item))
    return (type(item).__name__, str(item))


def _norm_updates(pul):
    out = []
    for primitive in pul:
        if isinstance(primitive, EnqueuePrimitive):
            out.append(("enqueue", primitive.queue, serialize(primitive.body),
                        tuple((name, type(value).__name__, str(value))
                              for name, value in primitive.properties)))
        else:
            out.append(("reset", primitive.slicing,
                        None if primitive.key is None else str(primitive.key)))
    return out


def outcome(run, doc, variables=None):
    """(tag, …) fingerprint of an evaluation: result, error, updates."""
    pul = PendingUpdateList()
    ctx = DynamicContext(item=doc, variables=dict(variables or {}),
                         updates=pul)
    try:
        result = run(ctx)
    except Exception as exc:
        return ("error", type(exc).__name__, getattr(exc, "code", None))
    return ("ok", [_norm_item(item) for item in result], _norm_updates(pul))


def assert_equivalent(source, doc, variables=None):
    expr = compile_expression(source)
    interpreted = outcome(lambda ctx: evaluate(expr, ctx), doc, variables)
    compiled = outcome(compile_expr(expr), doc, variables)
    assert interpreted == compiled, (
        f"backends disagree on {source!r}:\n"
        f"  interp:   {interpreted}\n  compiled: {compiled}")


# -- shared fixtures ----------------------------------------------------------

ORDER_DOC = """\
<order priority="high"><id>42</id><customer vip="true">acme</customer>
<items><item sku="A" qty="2"><price>10.5</price></item>
<item sku="B" qty="1"><price>20</price></item>
<item sku="C" qty="5"><price>3</price></item></items>
<note>rush</note><note>fragile</note></order>"""


@pytest.fixture(scope="module")
def order():
    return parse(ORDER_DOC)


# -- curated corner cases -----------------------------------------------------

CURATED = [
    # paths, axes, document order
    "//item", "//item/price", "//item[1]", "//item[last()]", "//item[2.5]",
    "//item[0]", "//item[3][1]", "//item[price][2]", "//item[price > 5]",
    "//item/@sku", "/order/items/item/price", "/", "/order", "//note",
    "//item/ancestor::*", "//item/ancestor-or-self::*",
    "//price/..", "//price/../@qty", "//item/self::item",
    "//item/preceding-sibling::item", "//item/following-sibling::*",
    "//price/preceding::*", "//price/following::*",
    "//item/descendant-or-self::node()", "//text()", "//comment()",
    "/descendant-or-self::node()/child::price", "//*[self::note]",
    "//items//price", "//item/ancestor-or-self::*/descendant::price",
    "child::*", "attribute::*", "@priority", ".",
    # set operations over shared-tree nodes
    "//item union //note", "//item intersect //items/*",
    "//item except //item[2]", "//item[1] is //item[1]",
    "//item[1] << //item[2]", "//item[2] >> //note[1]",
    # operators and comparisons
    "1 + 2.5", "7 idiv 2", "-7 idiv 2", "7.5 mod 2", "-3.2 mod 2",
    "1 div 0", "1.0 div 0", "1e0 div 0", "-1e0 div 0", "0e0 div 0",
    "5 to 8", "8 to 5", "() + 3", "3 + ()", "'a' + 1",
    "//id = 42", "//id eq 42", "//id = '42'", "//id eq '42'",
    "//item/@qty > 1", "//item/@qty = (1, 5)", "'b' gt 'a'",
    "//customer/@vip = 'true'", "() = ()", "1 = (1, 2)", "(1, 2) = (2, 3)",
    "not(//missing)", "//id != 41", "//price < 100",
    # EBV, conditionals, quantifiers, FLWOR
    "if (//note) then 1 else 2", "if (//missing) then 1 else ()",
    "if (0) then 1 else 2", "if ('x') then 1 else 2",
    "some $i in //item satisfies $i/price > 15",
    "every $i in //item satisfies $i/price > 1",
    "some $i in //item, $j in //note satisfies $i/@sku = 'A'",
    "for $i in //item return $i/price",
    "for $i at $p in //item return $p * 10",
    "for $i in //item where $i/@qty >= 2 return string($i/@sku)",
    "for $i in //item order by xs:double($i/price) return string($i/@sku)",
    "for $i in //item order by xs:double($i/price) descending return $i/@sku",
    "for $i in //item order by string($i/@sku) descending return $i/price",
    "let $p := //price return (max($p), min($p), avg($p))",
    "for $i in //item for $n in //note return concat($i/@sku, $n)",
    # functions
    "count(//item)", "sum(//price)", "string-join(//item/@sku, '-')",
    "distinct-values((1, 1.0, '1', 1))", "reverse(//item)/@sku",
    "subsequence(//item, 2)", "subsequence(//item, 2, 1)",
    "index-of((1, 2, 1), 1)", "deep-equal(//item[1], //item[1])",
    "string(//customer)", "normalize-space(' a  b ')",
    "contains(//customer, 'cm')", "substring(//customer, 2, 3)",
    "translate('abc', 'ab', 'x')", "tokenize('a,b,,c', ',')",
    "number(//id)", "number(//note)", "abs(-2.5)", "floor(2.5)",
    "ceiling(-2.5)", "round(2.5)", "round(-2.5)", "name(//item[1])",
    "local-name(//item[1]/@sku)", "root(//price[1]) is /",
    "string-length(//customer)", "exists(//note)", "empty(//note)",
    "boolean(//note)", "data(//item[1])", "zero-or-one(//missing)",
    # errors
    "1 div 'a'", "//item + 1", "unknown-fn()", "count()",
    "fn:error()", "fn:error('X', 'boom')", "exactly-one(//item)",
    "zero-or-one(//item)", "one-or-more(//missing)",
    "//item lt //note", "('a', 'b') and 1", "$unbound",
    "sum(//note)", "avg((1, 'x'))",
    # constructors
    "<r/>", "<r a='1' b='{1+1}'/>", "<r>{//item[1]}</r>",
    "<r>{//item/@sku}</r>", "<r>{1, 2, 'x'}</r>",
    "<out>{//note/text()}</out>", "element foo {//note[1]}",
    "element {concat('a', 'b')} {1}", "attribute q {//id}",
    "text {'a', 1}", "text {()}", "<a><b>{string(//id)}</b></a>",
    # update primitives
    "do enqueue <m>{string(//id)}</m> into target",
    "do enqueue <m/> into q with k value //id with n value 7",
    "do enqueue //item[1] into q", "do enqueue (//item) into q",
    "do enqueue 'atom' into q", "do reset", "do reset(s, //id)",
    "do reset(s, 'key')",
    "if (//note) then do enqueue <m/> into q else do reset",
]


@pytest.mark.parametrize("source", CURATED)
def test_curated_equivalence(source, order):
    assert_equivalent(source, order,
                      variables={"x": [order], "n": [5]})


# -- hypothesis: random expressions over random documents ---------------------

TAGS = ["a", "b", "item", "price", "note"]


@st.composite
def xml_documents(draw):
    def build(depth: int) -> str:
        tag = draw(st.sampled_from(TAGS))
        attrs = ""
        if draw(st.booleans()):
            attrs += f' id="{draw(st.integers(0, 9))}"'
        if draw(st.booleans()):
            attrs += f' sku="S{draw(st.integers(0, 4))}"'
        if depth >= 2:
            children = []
        else:
            children = [build(depth + 1)
                        for _ in range(draw(st.integers(0, 3)))]
        if children:
            content = "".join(children)
        elif draw(st.booleans()):
            content = str(draw(st.integers(0, 99)))
        else:
            content = draw(st.sampled_from(["", "x", "y z", "7.5"]))
        return f"<{tag}{attrs}>{content}</{tag}>"

    body = "".join(build(0) for _ in range(draw(st.integers(1, 3))))
    return parse(f"<doc>{body}</doc>")


ATOM_SOURCES = [
    "1", "2", "0", "3.5", "1.5e0", "'ab'", "''", ".", "position()", "last()",
    "//a", "//b", "//item", "//price", "//item/@sku", "/doc", "child::*",
    "@*", "@id", "//a/text()", "$x", "$n", "()", "xs:integer('7')",
    "true()", "false()",
]

PATH_SOURCES = ["//a", "//b", "//item", "//price", "//item/@sku",
                "child::*", "/doc/*", "//a/..", "//b/ancestor::*"]

BINARY_OPS = ["+", "-", "*", "div", "idiv", "mod", "=", "!=", "<", "<=",
              ">", ">=", "eq", "ne", "lt", "gt", "and", "or"]


def _extend(children):
    paths = st.sampled_from(PATH_SOURCES)
    return st.one_of(
        st.builds(lambda a, b: f"({a}, {b})", children, children),
        st.builds(lambda a, op, b: f"({a} {op} {b})",
                  children, st.sampled_from(BINARY_OPS), children),
        st.builds(lambda p, a: f"{p}[{a}]", paths, children),
        st.builds(lambda a: f"({a})[1]", children),
        st.builds(lambda a, f: f"{f}({a})", children,
                  st.sampled_from(["count", "string", "number", "data",
                                   "not", "exists", "empty", "reverse",
                                   "distinct-values", "sum"])),
        st.builds(lambda a, b: f"if ({a}) then {b} else {a}",
                  children, children),
        st.builds(lambda a: f"for $v in {a} return string($v)", children),
        st.builds(lambda a, b: f"for $v at $p in {a} return ($p, {b})",
                  children, children),
        st.builds(lambda a, b: f"let $v := {a} return ($v, {b})",
                  children, children),
        st.builds(lambda a, b: f"some $v in {a} satisfies {b}",
                  children, children),
        st.builds(lambda p, q, op: f"({p} {op} {q})",
                  paths, paths,
                  st.sampled_from(["union", "intersect", "except"])),
        st.builds(lambda a, b: f"<e x='{{{a}}}'>{{{b}}}</e>",
                  children, children),
        st.builds(lambda a: f"do enqueue <m>{{{a}}}</m> into q1", children),
        st.builds(lambda a: f"1 to count({a})", children),
        st.builds(lambda p, a: f"{p}[{a}]/@sku", paths, children),
    )


EXPRESSIONS = st.recursive(st.sampled_from(ATOM_SOURCES), _extend,
                           max_leaves=6)


@given(source=EXPRESSIONS, doc=xml_documents())
@settings(max_examples=150, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_random_equivalence(source, doc):
    try:
        compile_expression(source)
    except StaticError:
        # Both backends share the parser; nothing to compare.
        assume(False)
    assert_equivalent(source, doc, variables={"x": [doc], "n": [5]})


# -- workload scenarios -------------------------------------------------------

def _drive_requests(server):
    for _, _, body in request_stream(8):
        server.enqueue("crm", body)
    server.run_until_idle()


def _drive_mixed(server):
    for index, (request_id, customer, body) in enumerate(request_stream(6)):
        server.enqueue("crm", body)
        if index % 2 == 0:
            server.enqueue("crm", order_message(index, customer))
        if index % 3 == 0:
            server.enqueue("crm", payment_confirmation(request_id))
    server.run_until_idle()


def _drive_restricted(server):
    for index in range(5):
        server.enqueue("crm", offer_request(
            f"req-{index}", f"cust-{index % 2}", items=4,
            restricted=index % 2 == 0))
    server.run_until_idle()


SCENARIOS = [
    ("requests", lambda: procurement_application(), _drive_requests),
    ("priority", lambda: procurement_application(priority_crm=3),
     _drive_requests),
    ("mixed", lambda: procurement_application(), _drive_mixed),
    ("restricted", lambda: procurement_application(), _drive_restricted),
]


def _run_scenario(backend, app_factory, drive, monkeypatch):
    monkeypatch.setenv(BACKEND_ENV_VAR, backend)
    server = DemaqServer(app_factory())
    drive(server)
    stats = server.executor.stats
    snapshot = {
        "queues": {name: server.queue_texts(name)
                   for name in server.app.queues},
        "processed": stats.messages_processed,
        "evaluated": stats.rules_evaluated,
        "prefiltered": stats.rules_skipped_by_prefilter,
        "errors": stats.rule_errors,
        "enqueues": stats.enqueues,
        "resets": stats.resets,
        "resolver_evaluations": server.resolver.evaluations,
        "unhandled": [serialize(doc) for doc in server.unhandled_errors],
    }
    server.close()
    return snapshot


@pytest.mark.parametrize("name,app_factory,drive", SCENARIOS)
def test_workload_scenario_equivalence(name, app_factory, drive, monkeypatch):
    interp = _run_scenario("interp", app_factory, drive, monkeypatch)
    compiled = _run_scenario("compiled", app_factory, drive, monkeypatch)
    assert interp == compiled


def test_backend_switch_defaults_to_compiled(monkeypatch):
    monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
    from repro.xquery import active_backend
    assert active_backend() == "compiled"
    monkeypatch.setenv(BACKEND_ENV_VAR, "interp")
    assert active_backend() == "interp"
    monkeypatch.setenv(BACKEND_ENV_VAR, "bogus")
    with pytest.raises(ValueError):
        active_backend()


def test_make_evaluator_rejects_unknown_backend(order):
    from repro.xquery import evaluate_expression, make_evaluator
    expr = compile_expression("1 + 1")
    with pytest.raises(ValueError):
        make_evaluator(expr, backend="bogus")
    # aliases accepted by the env var work as explicit arguments too
    for alias in ("interpreter", "interpreted", "closures"):
        assert make_evaluator(expr, backend=alias)(
            DynamicContext(item=order)) == [2]
    with pytest.raises(ValueError):
        evaluate_expression("1", backend="bogus")


def test_long_boolean_chains_compile_linearly(order):
    # Exponential recompilation of and/or operands would hang here.
    source = " and ".join(f"(//item/@qty = {i})" for i in range(60))
    assert_equivalent(source, order)
