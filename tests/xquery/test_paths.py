"""Tests for path evaluation: axes, name/kind tests, predicates."""

import pytest

from repro.xmldm import Attribute, Element, parse
from repro.xquery import evaluate_expression as E
from repro.xquery.errors import TypeError_, XQueryError


def names(result):
    return [n.name.local_name for n in result]


def test_child_steps(q):
    assert names(q("/order/items/item")) == ["item", "item", "item"]


def test_descendant_abbreviation(q):
    assert len(q("//item")) == 3
    assert len(q("//price")) == 3


def test_descendant_from_inner_context(order):
    items = order.root_element.first_child("items")
    assert len(E("//price", context_item=items)) == 3  # // is from root
    assert len(E(".//price", context_item=items)) == 3


def test_attribute_axis(q):
    assert [a.value for a in q("//item/@sku")] == ["A", "B", "C"]
    assert q("string(/order/@priority)") == ["high"]


def test_parent_axis(q):
    assert names(q("//price/..")) == ["item", "item", "item"]
    assert names(q("//price/parent::item")) == ["item", "item", "item"]
    assert q("//price/parent::nomatch") == []


def test_ancestor_axes(q):
    assert names(q("(//price)[1]/ancestor::*")) == ["order", "items", "item"]
    result = q("(//price)[1]/ancestor-or-self::*")
    assert names(result) == ["order", "items", "item", "price"]


def test_per_context_numeric_predicate(q):
    # //price[1] selects the first price *per item*, not overall
    assert len(q("//price[1]")) == 3
    assert len(q("(//price)[1]")) == 1


def test_self_axis(q):
    assert names(q("//item/self::item")) == ["item"] * 3
    assert q("//item/self::other") == []


def test_sibling_axes(q):
    assert names(q("/order/customer/following-sibling::*")) == [
        "items", "note"]
    assert names(q("/order/note/preceding-sibling::*")) == [
        "id", "customer", "items"]


def test_following_and_preceding_axes(q):
    following = q("/order/customer/following::*")
    assert "item" in names(following) and "note" in names(following)
    preceding = q("/order/note/preceding::price")
    assert len(preceding) == 3


def test_wildcard_tests(q):
    assert len(q("/order/*")) == 4
    assert names(q("//item/*")) == ["price"] * 3
    assert [a.value for a in q("//item[1]/@*")] == ["A", "2"]


def test_kind_tests(q):
    assert [t.value for t in q("/order/note/text()")] == ["rush"]
    assert len(q("//node()")) > 5
    assert names(q("//element(item)")) == ["item"] * 3


def test_numeric_predicates(q):
    assert q("string(//item[1]/@sku)") == ["A"]
    assert q("string(//item[3]/@sku)") == ["C"]
    assert q("//item[4]") == []


def test_last_predicate(q):
    assert q("string(//item[last()]/@sku)") == ["C"]
    assert q("string(//item[last() - 1]/@sku)") == ["B"]


def test_position_function_in_predicate(q):
    assert q("string(//item[position() = 2]/@sku)") == ["B"]
    skus = q("for $i in //item[position() > 1] return string($i/@sku)")
    assert skus == ["B", "C"]


def test_boolean_predicates(q):
    assert q("string(//item[price > 5][last()]/@sku)") == ["B"]
    assert names(q("//item[@qty = 5]/price")) == ["price"]


def test_predicate_on_reverse_axis_positions(q):
    # ancestor axis: position 1 is the nearest ancestor
    assert names(q("(//price)[1]/ancestor::*[1]")) == ["item"]
    assert names(q("(//price)[1]/ancestor::*[last()]")) == ["order"]


def test_chained_predicates(q):
    assert q("string(//item[price > 2][2]/@sku)") == ["B"]


def test_document_order_and_dedup(q):
    result = q("//item/.. | //items")
    assert len(result) == 1
    merged = q("(//price, //price)")
    assert len(merged) == 6
    via_path = q("//item/../..//price")
    assert len(via_path) == 3


def test_path_result_document_order(q):
    # Even when steps visit nodes in another order, results are doc-ordered
    result = q("(//note | //id)")
    assert names(result) == ["id", "note"]


def test_union_intersect_except(q):
    assert names(q("//id union //note")) == ["id", "note"]
    assert names(q("(//id | //note) intersect //note")) == ["note"]
    assert names(q("(//id | //note) except //note")) == ["id"]


def test_set_ops_require_nodes(q):
    with pytest.raises(TypeError_):
        q("(1, 2) union (3)")


def test_atomic_in_middle_of_path_rejected(q):
    with pytest.raises(XQueryError):
        q("//item/string(@sku)/x")


def test_mixed_nodes_and_atomics_in_last_step(q):
    # A final step may return atomics...
    assert q("//item/string(@sku)") == ["A", "B", "C"]
    # ...but not a mixture of both.
    with pytest.raises(TypeError_):
        q("//item/(price, 1)")


def test_absolute_path_requires_node_context():
    with pytest.raises(XQueryError):
        E("/a", context_item=42)


def test_path_on_constructed_tree():
    result = E("<a><b>1</b><b>2</b></a>/b")
    assert [n.string_value for n in result] == ["1", "2"]


def test_attribute_step_on_attribute_is_empty(q):
    assert q("//item/@sku/@x") == []


def test_namespace_name_tests():
    doc = parse('<a xmlns:s="urn:shop"><s:item/><item/></a>')
    result = E("//s:item", context_item=doc, namespaces={"s": "urn:shop"})
    assert len(result) == 1
    unqualified = E("//item", context_item=doc)
    assert len(unqualified) == 1
    any_ns = E("//*:item", context_item=doc)
    assert len(any_ns) == 2


def test_default_element_namespace_not_assumed():
    doc = parse('<a xmlns="urn:d"><b/></a>')
    # unprefixed name test matches no-namespace, so needs the prefix form
    assert E("//b", context_item=doc) == []
    assert len(E("//p:b", context_item=doc, namespaces={"p": "urn:d"})) == 1


def test_empty_intermediate_step_short_circuits(q):
    assert q("//nothing/anything/deeper") == []


def test_context_position_in_nested_predicate(q):
    # inner predicate has its own focus
    result = q("//items[item[2]/@sku = 'B']")
    assert len(result) == 1
