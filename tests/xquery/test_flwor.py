"""Tests for FLWOR, quantified, and conditional expressions."""

import pytest

from repro.xquery import evaluate_expression as E
from repro.xquery.errors import DynamicError, XQueryError


def test_for_iterates():
    assert E("for $x in (1, 2, 3) return $x * 2") == [2, 4, 6]


def test_for_over_empty_source():
    assert E("for $x in () return $x") == []


def test_let_binds_sequence():
    assert E("let $s := (1, 2, 3) return count($s)") == [3]


def test_nested_for_clauses_cartesian():
    result = E("for $x in (1, 2), $y in (10, 20) return $x + $y")
    assert result == [11, 21, 12, 22]


def test_positional_variable():
    result = E("for $x at $i in ('a', 'b', 'c') return $i")
    assert result == [1, 2, 3]


def test_where_filters_tuples():
    result = E("for $x in (1, 2, 3, 4) where $x mod 2 = 0 return $x")
    assert result == [2, 4]


def test_order_by_ascending_default():
    result = E("for $x in (3, 1, 2) order by $x return $x")
    assert result == [1, 2, 3]


def test_order_by_descending():
    result = E("for $x in (3, 1, 2) order by $x descending return $x")
    assert result == [3, 2, 1]


def test_order_by_string_keys(q):
    result = q("for $i in //item order by string($i/@sku) descending "
               "return string($i/@sku)")
    assert result == ["C", "B", "A"]


def test_order_by_multiple_keys():
    result = E("for $x in (3, 1, 2, 1) order by $x mod 2, $x return $x")
    assert result == [2, 1, 1, 3]


def test_order_by_is_stable():
    # ties keep tuple order
    result = E("for $x in (21, 11, 22, 12) order by $x mod 10 return $x")
    assert result == [21, 11, 22, 12]


def test_order_by_empty_least():
    result = E("for $x in (2, 1) order by ()[1] return $x")
    assert result == [2, 1]


def test_stable_order_by_keyword():
    result = E("for $x in (2, 1) stable order by $x return $x")
    assert result == [1, 2]


def test_let_shadowing():
    result = E("let $x := 1 let $x := $x + 1 return $x")
    assert result == [2]


def test_for_let_interleaved():
    result = E("for $x in (1, 2) let $y := $x * 10 for $z in (1, 2) "
               "return $y + $z")
    assert result == [11, 12, 21, 22]


def test_flwor_scoping_does_not_leak():
    with pytest.raises(DynamicError):
        E("(for $x in (1) return $x, $x)")


def test_unbound_variable():
    with pytest.raises(DynamicError, match="unbound"):
        E("$nope")


def test_variables_injected_from_host():
    assert E("$n + 1", variables={"n": [41]}) == [42]


# -- quantified ----------------------------------------------------------------

def test_some_quantifier():
    assert E("some $x in (1, 2, 3) satisfies $x = 2") == [True]
    assert E("some $x in (1, 2, 3) satisfies $x = 9") == [False]
    assert E("some $x in () satisfies $x") == [False]


def test_every_quantifier():
    assert E("every $x in (1, 2, 3) satisfies $x > 0") == [True]
    assert E("every $x in (1, 2, 3) satisfies $x > 1") == [False]
    assert E("every $x in () satisfies $x") == [True]


def test_quantifier_multiple_bindings():
    assert E("some $x in (1, 2), $y in (2, 3) satisfies $x = $y") == [True]
    assert E("every $x in (1, 2), $y in (2, 3) satisfies $x < $y") == [False]


# -- conditionals ----------------------------------------------------------------

def test_if_branches(q):
    assert q("if (//item) then 'yes' else 'no'") == ["yes"]
    assert q("if (//missing) then 'yes' else 'no'") == ["no"]


def test_if_without_else_yields_empty(q):
    assert q("if (//missing) then 'yes'") == []


def test_untaken_branch_not_evaluated():
    assert E("if (true()) then 1 else (1 idiv 0)") == [1]


def test_nested_ifs_like_paper_join_rule(q):
    # the Fig. 7 pattern: outer readiness check, inner accept/refuse
    result = q("""
        if (//item and //note) then
            if (//item[@qty = 5]) then 'accept' else 'refuse'
        else 'wait'
    """)
    assert result == ["accept"]


def test_condition_ebv_error_propagates():
    with pytest.raises(XQueryError):
        E("if ((1, 2)) then 1 else 2")
