"""Tests for the Demaq update primitives and pending update lists."""

import pytest

from repro.xmldm import Document, parse, serialize
from repro.xquery import (EnqueuePrimitive, PendingUpdateList, ResetPrimitive,
                          evaluate_expression as E)
from repro.xquery.errors import UpdateError


def run(expression, **kwargs):
    pul = PendingUpdateList()
    result = E(expression, updates=pul, **kwargs)
    return result, pul


def test_enqueue_produces_primitive():
    result, pul = run("do enqueue <ping/> into out")
    assert result == []
    assert len(pul) == 1
    primitive = pul.enqueues()[0]
    assert primitive.queue == "out"
    assert isinstance(primitive.body, Document)
    assert serialize(primitive.body) == "<ping/>"


def test_enqueue_with_properties(order):
    _, pul = run("""
        do enqueue <req/> into supplier
            with Sender value "http://ws.chem.invalid/"
            with qty value sum(//item/@qty)
    """, context_item=order)
    properties = pul.enqueues()[0].property_dict()
    assert properties["Sender"] == "http://ws.chem.invalid/"
    assert properties["qty"] == 8.0


def test_enqueue_copies_body(order):
    _, pul = run("do enqueue //items into audit", context_item=order)
    body = pul.enqueues()[0].body
    original = order.root_element.first_child("items")
    assert body.root_element is not original
    assert body.root_element.string_value == original.string_value


def test_enqueue_body_mutation_does_not_leak(order):
    _, pul = run("do enqueue //items into audit", context_item=order)
    from repro.xmldm import Element
    pul.enqueues()[0].body.root_element.append(Element("extra"))
    assert order.root_element.first_child("items").child_elements("extra") == []


def test_sequence_of_enqueues_ordered(order):
    _, pul = run("""
        do enqueue <a/> into finance,
        do enqueue <b/> into legal,
        do enqueue <c/> into supplier
    """, context_item=order)
    assert [p.queue for p in pul.enqueues()] == ["finance", "legal", "supplier"]


def test_conditional_enqueue_untaken(order):
    result, pul = run("if (//missing) then do enqueue <a/> into out",
                      context_item=order)
    assert result == []
    assert len(pul) == 0


def test_enqueue_in_flwor(order):
    _, pul = run("""
        for $i in //item
        return do enqueue <pick sku="{$i/@sku}"/> into warehouse
    """, context_item=order)
    assert len(pul) == 3
    skus = [p.body.root_element.attribute_value("sku") for p in pul.enqueues()]
    assert skus == ["A", "B", "C"]


def test_enqueue_requires_single_node(order):
    with pytest.raises(UpdateError):
        run("do enqueue //item into out", context_item=order)
    with pytest.raises(UpdateError):
        run("do enqueue () into out", context_item=order)
    with pytest.raises(UpdateError):
        run("do enqueue 42 into out", context_item=order)


def test_enqueue_document_node(order):
    _, pul = run("do enqueue / into archive", context_item=order)
    body = pul.enqueues()[0].body
    assert body.root_element.name.local_name == "order"


def test_reset_bare():
    _, pul = run("do reset")
    resets = pul.resets()
    assert len(resets) == 1
    assert resets[0].slicing is None
    assert resets[0].key is None


def test_reset_parameterized(order):
    _, pul = run("do reset(orders, string(//id))", context_item=order)
    reset = pul.resets()[0]
    assert reset.slicing == "orders"
    assert reset.key == "42"


def test_reset_untyped_key_becomes_string(order):
    _, pul = run("do reset(orders, //id)", context_item=order)
    assert pul.resets()[0].key == "42"
    assert type(pul.resets()[0].key) is str


def test_mixed_primitives_keep_order(order):
    _, pul = run("""
        do enqueue <a/> into x, do reset, do enqueue <b/> into y
    """, context_item=order)
    kinds = [type(p).__name__ for p in pul]
    assert kinds == ["EnqueuePrimitive", "ResetPrimitive", "EnqueuePrimitive"]


def test_merge_pending_update_lists():
    first = PendingUpdateList()
    second = PendingUpdateList()
    E("do enqueue <a/> into x", updates=first)
    E("do enqueue <b/> into y", updates=second)
    first.merge(second)
    assert [p.queue for p in first.enqueues()] == ["x", "y"]


def test_snapshot_semantics_value_and_updates(order):
    # an expression can both return a value and emit updates
    pul = PendingUpdateList()
    result = E("(do enqueue <a/> into x, 42)", context_item=order,
               updates=pul)
    assert result == [42]
    assert len(pul) == 1
