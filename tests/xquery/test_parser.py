"""Tests for expression parsing (structure and static errors)."""

import pytest

from repro.xquery import ast, compile_expression
from repro.xquery.errors import StaticError


def test_literals():
    assert compile_expression("42").value == 42
    assert compile_expression("'x'").value == "x"
    assert str(compile_expression("1.5").value) == "1.5"
    assert compile_expression("1e3").value == 1000.0


def test_sequence_expr():
    expr = compile_expression("1, 2, 3")
    assert isinstance(expr, ast.SequenceExpr)
    assert len(expr.items) == 3


def test_empty_parens():
    expr = compile_expression("()")
    assert isinstance(expr, ast.SequenceExpr)
    assert expr.items == []


def test_if_without_else_allowed():
    expr = compile_expression("if (1) then 2")
    assert isinstance(expr, ast.IfExpr)
    assert expr.else_branch is None


def test_if_with_else():
    expr = compile_expression("if (1) then 2 else 3")
    assert expr.else_branch is not None


def test_flwor_structure():
    expr = compile_expression(
        "for $x at $i in (1,2), $y in (3,4) let $z := $x "
        "where $x < $y order by $z descending return $z")
    assert isinstance(expr, ast.FLWORExpr)
    kinds = [type(c).__name__ for c in expr.clauses]
    assert kinds == ["ForClause", "ForClause", "LetClause"]
    assert expr.clauses[0].position_var == "i"
    assert expr.where is not None
    assert expr.order_by[0].descending is True


def test_flwor_requires_return():
    with pytest.raises(StaticError):
        compile_expression("for $x in (1,2) $x")


def test_quantified():
    expr = compile_expression("some $x in (1,2) satisfies $x = 2")
    assert isinstance(expr, ast.QuantifiedExpr)
    assert expr.quantifier == "some"


def test_operator_precedence():
    # or < and < comparison < additive < multiplicative
    expr = compile_expression("1 + 2 * 3 = 7 and 1 or 0")
    assert isinstance(expr, ast.BinaryOp) and expr.op == "or"
    left = expr.left
    assert left.op == "and"
    comparison = left.left
    assert isinstance(comparison, ast.Comparison)
    addition = comparison.left
    assert addition.op == "+"
    assert addition.right.op == "*"


def test_value_vs_general_comparison():
    general = compile_expression("a = b")
    value = compile_expression("a eq b")
    assert general.op == "="
    assert value.op == "eq"


def test_name_called_eq_is_not_operator_at_end():
    # a path of one step named "eq" must still parse standalone
    expr = compile_expression("eq")
    assert isinstance(expr, ast.AxisStep)
    assert expr.test.local_name == "eq"


def test_paths_absolute_and_relative():
    absolute = compile_expression("/a/b")
    assert isinstance(absolute, ast.PathExpr) and absolute.absolute
    relative = compile_expression("a/b")
    assert isinstance(relative, ast.PathExpr) and not relative.absolute
    assert len(relative.steps) == 2


def test_double_slash_inserts_descendant_step():
    expr = compile_expression("//b")
    assert expr.absolute
    first = expr.steps[0]
    assert isinstance(first, ast.AxisStep)
    assert first.axis == "descendant-or-self"
    assert isinstance(first.test, ast.KindTest)


def test_lone_slash():
    expr = compile_expression("/")
    assert isinstance(expr, ast.PathExpr) and expr.absolute
    assert expr.steps == []


def test_attribute_abbreviation():
    expr = compile_expression("@sku")
    assert isinstance(expr, ast.AxisStep)
    assert expr.axis == "attribute"


def test_parent_abbreviation():
    expr = compile_expression("../x")
    assert isinstance(expr, ast.PathExpr)
    assert expr.steps[0].axis == "parent"


def test_explicit_axes():
    for axis in ("child", "descendant", "ancestor", "self",
                 "following-sibling", "preceding-sibling"):
        expr = compile_expression(f"{axis}::x")
        assert isinstance(expr, ast.AxisStep)
        assert expr.axis == axis


def test_kind_tests():
    expr = compile_expression("text()")
    assert isinstance(expr, ast.AxisStep)
    assert expr.test.kind == "text"
    expr = compile_expression("element(foo)")
    assert expr.test.kind == "element"
    assert expr.test.name.local_name == "foo"


def test_wildcard_name_tests():
    assert compile_expression("*").test.local_name is None
    star_local = compile_expression("*:id").test
    assert star_local.local_name == "id" and star_local.any_namespace


def test_prefix_wildcard_requires_declared_namespace():
    expr = compile_expression("p:*", namespaces={"p": "urn:x"})
    assert expr.test.namespace == "urn:x"
    with pytest.raises(StaticError):
        compile_expression("p:*")


def test_prefixed_name_test_resolution():
    expr = compile_expression("p:item", namespaces={"p": "urn:x"})
    assert expr.test.namespace == "urn:x"
    assert expr.test.local_name == "item"
    with pytest.raises(StaticError, match="undeclared"):
        compile_expression("p:item")


def test_predicates_attach_to_steps():
    expr = compile_expression("a[1]/b[@x][2]")
    assert len(expr.steps[0].predicates) == 1
    assert len(expr.steps[1].predicates) == 2


def test_filter_on_primary():
    expr = compile_expression("(1,2,3)[2]")
    assert isinstance(expr, ast.FilterExpr)


def test_function_call_in_path():
    expr = compile_expression('qs:queue("invoices")/payment')
    assert isinstance(expr, ast.PathExpr)
    assert isinstance(expr.steps[0], ast.FunctionCall)


def test_do_enqueue_parses():
    expr = compile_expression(
        'do enqueue <a/> into finance with Sender value "http://x/" '
        'with priority value 3')
    assert isinstance(expr, ast.EnqueueExpr)
    assert expr.queue == "finance"
    assert [name for name, _ in expr.properties] == ["Sender", "priority"]


def test_do_reset_forms():
    bare = compile_expression("do reset")
    assert isinstance(bare, ast.ResetExpr)
    assert bare.slicing is None
    empty = compile_expression("do reset()")
    assert empty.slicing is None
    full = compile_expression("do reset(orders, //orderID)")
    assert full.slicing == "orders"
    assert full.key is not None


def test_enqueue_sequence_from_paper_example():
    # Fig. 5: several enqueues combined with the comma operator.
    expr = compile_expression("""
        do enqueue $customerInfo into finance,
        do enqueue $exportRestrictionsInfo into legal,
        do enqueue $plantCapacityInfo into supplier
            with Sender value "http://ws.chem.invalid/"
    """)
    assert isinstance(expr, ast.SequenceExpr)
    assert all(isinstance(i, ast.EnqueueExpr) for i in expr.items)


def test_element_named_like_keywords():
    # keyword-looking names must still work as path steps
    for name in ("for", "let", "if", "do", "union", "order", "value"):
        expr = compile_expression(f"/{name}")
        assert isinstance(expr, ast.PathExpr)


def test_unary_minus_chain():
    expr = compile_expression("--1")
    assert isinstance(expr, ast.UnaryOp)
    assert isinstance(expr.operand, ast.UnaryOp)


def test_range_and_union_precedence():
    expr = compile_expression("1 to 2 + 3")
    assert expr.op == "to"
    assert expr.right.op == "+"


def test_trailing_garbage_rejected():
    with pytest.raises(StaticError, match="trailing"):
        compile_expression("1 2")


@pytest.mark.parametrize("bad", [
    "", "let $x 1 return $x", "for x in y return x", "if (1) 2",
    "some $x in 1", "do enqueue into q", "do enqueue <a/> finance",
    "(1,", "a[", "@", "$", "a eq", "1 +",
])
def test_malformed_expressions(bad):
    with pytest.raises(StaticError):
        compile_expression(bad)


def test_error_reports_location():
    with pytest.raises(StaticError, match="line"):
        compile_expression("if (1)\nthen !")
