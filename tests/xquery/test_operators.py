"""Tests for arithmetic, comparisons, and logic."""

import math
from decimal import Decimal

import pytest

from repro.xquery import evaluate_expression as E
from repro.xquery.errors import DynamicError, TypeError_, XQueryError


def one(expression, **kwargs):
    result = E(expression, **kwargs)
    assert len(result) == 1
    return result[0]


# -- arithmetic ---------------------------------------------------------------

def test_integer_arithmetic():
    assert one("1 + 2") == 3
    assert one("2 * 3 - 4") == 2
    assert isinstance(one("1 + 2"), int)


def test_decimal_propagation():
    result = one("1.5 + 1")
    assert result == Decimal("2.5")
    assert isinstance(result, Decimal)


def test_double_propagation():
    assert one("1e0 + 1") == 2.0
    assert isinstance(one("1e0 + 1"), float)


def test_div_on_integers_gives_decimal():
    result = one("7 div 2")
    assert result == Decimal("3.5")
    assert isinstance(result, Decimal)


def test_idiv_truncates_toward_zero():
    assert one("7 idiv 2") == 3
    assert one("-7 idiv 2") == -3
    assert one("7 idiv -2") == -3


def test_mod_sign_follows_dividend():
    assert one("7 mod 3") == 1
    assert one("-7 mod 3") == -1
    assert one("7 mod -3") == 1


def test_division_by_zero():
    with pytest.raises(DynamicError):
        one("1 div 0")
    with pytest.raises(DynamicError):
        one("1 idiv 0")
    with pytest.raises(DynamicError):
        one("1 mod 0")


def test_double_division_by_zero_is_inf():
    assert one("1e0 div 0") == math.inf
    assert one("-1e0 div 0") == -math.inf
    assert math.isnan(one("0e0 div 0"))


def test_unary_minus():
    assert one("-(3)") == -3
    assert one("--3") == 3
    assert one("+3") == 3


def test_unary_on_non_numeric_rejected():
    with pytest.raises(TypeError_):
        one("-'abc'")


def test_arithmetic_with_empty_sequence_is_empty():
    assert E("() + 1") == []
    assert E("1 - ()") == []


def test_arithmetic_on_multiple_items_rejected():
    with pytest.raises(TypeError_):
        E("(1, 2) + 1")


def test_untyped_operands_become_double(q1):
    value = q1("//item[1]/price + 1")
    assert value == 11.5
    assert isinstance(value, float)


def test_range_operator():
    assert E("1 to 4") == [1, 2, 3, 4]
    assert E("3 to 2") == []
    assert E("5 to 5") == [5]
    assert E("() to 3") == []


# -- value comparisons -----------------------------------------------------------

def test_value_comparison_singletons():
    assert one("1 eq 1") is True
    assert one("1 ne 2") is True
    assert one("'a' lt 'b'") is True
    assert one("2 ge 3") is False


def test_value_comparison_empty_gives_empty():
    assert E("() eq 1") == []
    assert E("1 eq ()") == []


def test_value_comparison_rejects_sequences(q):
    with pytest.raises(TypeError_):
        q("//item/price eq 10.5")


def test_value_comparison_untyped_is_string(q):
    # untypedAtomic compares as string under value comparison
    assert q("//item[1]/@qty eq '2'") == [True]


def test_value_comparison_type_mismatch():
    with pytest.raises(TypeError_):
        one("1 eq 'x'")


# -- general comparisons ------------------------------------------------------------

def test_general_comparison_existential(q):
    assert q("//item/@qty = 5") == [True]
    assert q("//item/@qty = 99") == [False]
    assert q("//item/@qty != 2") == [True]  # some item differs


def test_general_comparison_untyped_vs_number(q):
    assert q("//id = 42") == [True]
    assert q("//id < 43") == [True]


def test_general_comparison_untyped_vs_string(q):
    assert q("//customer = 'acme'") == [True]


def test_general_comparison_both_sides_sequences(q):
    assert q("//item/@qty = (1, 7)") == [True]
    assert q("(0, 99) = //item/@qty") == [False]


def test_general_comparison_empty_is_false():
    assert one("() = ()") is False
    assert one("1 = ()") is False


def test_boolean_general_comparison():
    assert one("true() = true()") is True
    with pytest.raises(TypeError_):
        one("true() = 1")


def test_datetime_comparison():
    assert one("xs:dateTime('2026-01-01T00:00:00Z') lt "
               "xs:dateTime('2026-06-12T00:00:00Z')") is True
    assert one("xs:dateTime('2026-01-01T10:00:00+02:00') eq "
               "xs:dateTime('2026-01-01T08:00:00Z')") is True


# -- node comparisons ------------------------------------------------------------------

def test_is_comparison(q):
    assert q("//item[1] is //item[1]") == [True]
    assert q("//item[1] is //item[2]") == [False]


def test_node_order_comparisons(q):
    assert q("//id << //note") == [True]
    assert q("//note >> //id") == [True]
    assert q("//note << //id") == [False]


def test_node_comparison_empty():
    assert E("() is ()") == []


def test_node_comparison_requires_nodes():
    with pytest.raises(TypeError_):
        one("1 is 2")


# -- logic --------------------------------------------------------------------------------

def test_and_or():
    assert one("1 and 'x'") is True
    assert one("1 and 0") is False
    assert one("0 or ''") is False
    assert one("0 or 3") is True


def test_short_circuit_and():
    # The right operand would raise; and must not evaluate it.
    assert one("false() and (1 idiv 0)") is False
    assert one("true() or (1 idiv 0)") is True


def test_ebv_of_node_sequence(q):
    assert q("boolean(//item)") == [True]
    assert q("boolean(//missing)") == [False]


def test_ebv_multi_atomic_rejected():
    with pytest.raises(XQueryError):
        one("boolean((1, 2))")


def test_ebv_nan_is_false():
    assert one("boolean(number('x'))") is False
