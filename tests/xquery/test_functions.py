"""Tests for the fn:/xs:/qs: function library."""

import math
from decimal import Decimal

import pytest

from repro.xmldm import parse
from repro.xquery import Environment, evaluate_expression as E
from repro.xquery.errors import (DynamicError, FunctionError, TypeError_,
                                 XQueryError)


def one(expression, **kwargs):
    result = E(expression, **kwargs)
    assert len(result) == 1
    return result[0]


# -- sequence functions ---------------------------------------------------------

def test_count_empty_exists():
    assert one("count((1, 2, 3))") == 3
    assert one("count(())") == 0
    assert one("empty(())") is True
    assert one("exists((1))") is True


def test_not_boolean():
    assert one("not(0)") is True
    assert one("not('x')") is False


def test_distinct_values():
    assert E("distinct-values((1, 2, 1, 3, 2))") == [1, 2, 3]
    assert E("distinct-values(('a', 'a'))") == ["a"]
    # numeric equality across types
    assert E("distinct-values((1, 1.0))") == [1]


def test_reverse_subsequence():
    assert E("reverse((1, 2, 3))") == [3, 2, 1]
    assert E("subsequence((1, 2, 3, 4), 2)") == [2, 3, 4]
    assert E("subsequence((1, 2, 3, 4), 2, 2)") == [2, 3]


def test_index_of_insert_remove():
    assert E("index-of((10, 20, 10), 10)") == [1, 3]
    assert E("insert-before((1, 2), 2, (9))") == [1, 9, 2]
    assert E("remove((1, 2, 3), 2)") == [1, 3]


def test_cardinality_checks():
    assert one("exactly-one((5))") == 5
    with pytest.raises(FunctionError):
        one("exactly-one((1, 2))")
    assert E("zero-or-one(())") == []
    with pytest.raises(FunctionError):
        E("zero-or-one((1, 2))")
    with pytest.raises(FunctionError):
        E("one-or-more(())")


def test_deep_equal():
    assert one("deep-equal((1, 2), (1, 2))") is True
    assert one("deep-equal((1, 2), (2, 1))") is False
    assert one("deep-equal(<a><b>1</b></a>, <a><b>1</b></a>)") is True
    assert one("deep-equal(<a b='1'/>, <a b='2'/>)") is False


# -- strings ---------------------------------------------------------------------

def test_string_functions(q):
    assert q("string(//id)") == ["42"]
    assert q("string-length(//customer)") == [4]
    assert one("concat('a', 'b', 'c')") == "abc"
    assert one("concat('a', 1, true())") == "a1true"


def test_concat_needs_two_args():
    with pytest.raises(XQueryError):
        one("concat('a')")


def test_string_join():
    assert one("string-join(('a', 'b'), '-')") == "a-b"
    assert one("string-join((), '-')") == ""
    assert one("string-join(('a', 'b'))") == "ab"


def test_contains_family():
    assert one("contains('hello', 'ell')") is True
    assert one("starts-with('hello', 'he')") is True
    assert one("ends-with('hello', 'lo')") is True
    assert one("contains('hello', '')") is True


def test_substring():
    assert one("substring('12345', 2)") == "2345"
    assert one("substring('12345', 2, 3)") == "234"
    assert one("substring('12345', 0)") == "12345"
    assert one("substring('12345', 1.5, 2.6)") == "234"  # spec example


def test_substring_before_after():
    assert one("substring-before('a=b', '=')") == "a"
    assert one("substring-after('a=b', '=')") == "b"
    assert one("substring-before('ab', 'x')") == ""
    assert one("substring-after('ab', 'x')") == ""


def test_case_and_space():
    assert one("upper-case('abc')") == "ABC"
    assert one("lower-case('ABC')") == "abc"
    assert one("normalize-space('  a   b ')") == "a b"


def test_translate():
    assert one("translate('abcabc', 'ab', 'BA')") == "BAcBAc"
    assert one("translate('abc', 'c', '')") == "ab"


def test_regex_functions():
    assert one("matches('a123', '[0-9]+')") is True
    assert one("replace('a1b2', '[0-9]', '#')") == "a#b#"
    assert E("tokenize('a,b,,c', ',')") == ["a", "b", "", "c"]
    assert E("tokenize('', ',')") == []


def test_bad_regex():
    with pytest.raises(FunctionError):
        one("matches('x', '(')")


# -- numbers --------------------------------------------------------------------

def test_number(q):
    assert q("number(//id)") == [42.0]
    assert math.isnan(one("number('nope')"))


def test_aggregates(q):
    assert one("sum((1, 2, 3))") == 6
    assert one("sum(())") == 0
    assert one("avg((1, 2, 3))") == 2
    assert one("max((1, 5, 3))") == 5
    assert one("min((4, 2, 8))") == 2
    assert E("avg(())") == []
    assert E("max(())") == []
    assert q("sum(//item/@qty)") == [8.0]


def test_aggregate_type_error():
    with pytest.raises(XQueryError):
        one("sum(('a', 'b'))")


def test_rounding():
    assert one("floor(2.7)") == 2
    assert one("ceiling(2.1)") == 3
    assert one("round(2.5)") == 3
    assert one("round(-2.5)") == -2  # round half to positive infinity
    assert one("abs(-3)") == 3
    assert E("floor(())") == []


# -- node functions --------------------------------------------------------------

def test_name_functions(q):
    assert q("name(//item[1])") == ["item"]
    assert q("local-name(//item[1])") == ["item"]
    assert q("name((//item)[1]/@sku)") == ["sku"]


def test_namespace_uri():
    doc = parse('<p:a xmlns:p="urn:x"/>')
    assert E("namespace-uri(/*)", context_item=doc) == ["urn:x"]
    assert E("namespace-uri(<b/>)") == [""]


def test_root_function(q, order):
    assert q("root((//price)[1]) is /") == [True]


def test_name_of_empty():
    assert one("name(())") == ""


# -- error and datetime ------------------------------------------------------------

def test_fn_error():
    with pytest.raises(FunctionError) as excinfo:
        one("error()")
    assert "FOER0000" in str(excinfo.value)
    with pytest.raises(FunctionError, match="boom"):
        one("error('APP0001', 'boom')")


def test_current_datetime_uses_environment():
    class FixedClock(Environment):
        def current_datetime(self):
            from repro.xquery.atomics import XSDateTime
            return XSDateTime.parse("2026-06-12T08:00:00Z")

    value = one("string(current-dateTime())", environment=FixedClock())
    assert value == "2026-06-12T08:00:00Z"


# -- xs constructors -----------------------------------------------------------------

def test_xs_constructors():
    assert one("xs:integer('42')") == 42
    assert one("xs:string(42)") == "42"
    assert one("xs:double('1.5')") == 1.5
    assert one("xs:decimal('1.5')") == Decimal("1.5")
    assert one("xs:boolean('true')") is True
    assert one("xs:boolean('0')") is False
    assert str(one("xs:dateTime('2026-01-01T00:00:00Z')")) == \
        "2026-01-01T00:00:00Z"


def test_xs_constructor_empty_propagates():
    assert E("xs:integer(())") == []


def test_xs_constructor_failure():
    with pytest.raises(XQueryError):
        one("xs:integer('abc')")
    with pytest.raises(XQueryError):
        one("xs:boolean('maybe')")


# -- qs functions and the environment -------------------------------------------------

class FakeEnvironment(Environment):
    """A scripted environment standing in for the rule executor."""

    def __init__(self):
        self.msg = parse("<m><requestID>9</requestID></m>")
        self.queues = {
            "invoices": [parse("<invoice><customerID>1</customerID></invoice>"),
                         parse("<invoice><customerID>2</customerID></invoice>")],
        }
        self.current = [parse("<x/>")]

    def message(self):
        return self.msg

    def queue(self, name):
        if name is None:
            return self.current
        try:
            return self.queues[name]
        except KeyError:
            raise DynamicError(f"unknown queue {name!r}")

    def slice_messages(self):
        return self.queues["invoices"]

    def slice_key(self):
        return "key-7"

    def property(self, name):
        return {"orderID": 77}.get(name)

    def collection(self, name):
        return self.queues["invoices"]


def test_qs_message():
    env = FakeEnvironment()
    assert E("qs:message()//requestID = 9", environment=env,
             context_item=env.msg) == [True]


def test_qs_queue_named():
    env = FakeEnvironment()
    assert one("count(qs:queue('invoices'))", environment=env) == 2


def test_qs_queue_default():
    env = FakeEnvironment()
    assert one("count(qs:queue())", environment=env) == 1


def test_qs_queue_unknown():
    with pytest.raises(DynamicError):
        E("qs:queue('nope')", environment=FakeEnvironment())


def test_qs_slice_and_key():
    env = FakeEnvironment()
    assert one("count(qs:slice())", environment=env) == 2
    assert one("qs:slicekey()", environment=env) == "key-7"


def test_qs_property():
    env = FakeEnvironment()
    assert one("qs:property('orderID')", environment=env) == 77
    assert E("qs:property('missing')", environment=env) == []


def test_collection():
    env = FakeEnvironment()
    assert one("count(collection('master'))", environment=env) == 2


def test_qs_functions_fail_without_engine():
    with pytest.raises(DynamicError, match="only available"):
        E("qs:message()")
    with pytest.raises(DynamicError, match="only available"):
        E("qs:slice()")
    with pytest.raises(DynamicError, match="slicing"):
        E("qs:slicekey()")


def test_unknown_function():
    with pytest.raises(XQueryError, match="unknown function"):
        E("fn:frobnicate()")


def test_wrong_arity_reported():
    with pytest.raises(XQueryError, match="not with 3"):
        E("contains('a', 'b', 'c')")
