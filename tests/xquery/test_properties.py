"""Property-based tests for evaluator invariants."""

from decimal import Decimal

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmldm import Element, Text, parse, serialize
from repro.xquery import evaluate_expression as E

ints = st.integers(min_value=-10_000, max_value=10_000)
small_ints = st.integers(min_value=1, max_value=50)


@given(ints, ints)
def test_integer_arithmetic_matches_python(a, b):
    assert E(f"{a} + {b}") == [a + b]
    assert E(f"{a} - {b}") == [a - b]
    assert E(f"{a} * {b}") == [a * b]


@given(ints, ints.filter(lambda v: v != 0))
def test_idiv_truncates_like_int_division(a, b):
    assert E(f"{a} idiv {b}") == [int(a / b)]


@given(ints, ints.filter(lambda v: v != 0))
def test_mod_identity(a, b):
    quotient = E(f"{a} idiv {b}")[0]
    remainder = E(f"{a} mod {b}")[0]
    assert quotient * b + remainder == a


@given(st.lists(ints, max_size=12))
def test_count_and_sum_agree_with_python(values):
    literal = f"({', '.join(map(str, values))})"
    assert E(f"count({literal})") == [len(values)]
    assert E(f"sum({literal})") == [sum(values)]


@given(st.lists(ints, min_size=1, max_size=12))
def test_min_max_agree_with_python(values):
    literal = f"({', '.join(map(str, values))})"
    assert E(f"max({literal})") == [max(values)]
    assert E(f"min({literal})") == [min(values)]


@given(st.lists(ints, max_size=10))
def test_reverse_is_involutive(values):
    literal = f"({', '.join(map(str, values))})"
    assert E(f"reverse(reverse({literal}))") == values


@given(st.lists(ints, max_size=10))
def test_order_by_sorts(values):
    literal = f"({', '.join(map(str, values))})"
    result = E(f"for $x in {literal} order by $x return $x")
    assert result == sorted(values)


@given(small_ints, small_ints)
def test_range_length(a, b):
    result = E(f"{a} to {b}")
    assert len(result) == max(0, b - a + 1)


@given(ints, ints)
def test_comparison_trichotomy(a, b):
    lt = E(f"{a} lt {b}")[0]
    gt = E(f"{a} gt {b}")[0]
    eq = E(f"{a} eq {b}")[0]
    assert sum((lt, gt, eq)) == 1


@given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126,
                                      blacklist_characters="'\"&<>{}"),
               max_size=15))
def test_string_literal_round_trip(text):
    assert E(f"'{text}'" if "'" not in text else f'"{text}"') == [text]
    assert E(f"string-length('{text}')") == [len(text)]


@given(st.lists(st.integers(min_value=0, max_value=9), min_size=1,
                max_size=8))
def test_path_over_generated_tree(values):
    root = Element("r", children=[
        Element("v", children=[Text(str(v))]) for v in values])
    assert E("count(v)", context_item=root) == [len(values)]
    total = E("sum(v)", context_item=root)[0]
    assert total == sum(values)
    # predicates by position agree with list indexing
    for index in range(1, len(values) + 1):
        got = E(f"string(v[{index}])", context_item=root)
        assert got == [str(values[index - 1])]


@given(st.lists(st.integers(min_value=0, max_value=5), min_size=1,
                max_size=8))
def test_distinct_values_semantics(values):
    literal = f"({', '.join(map(str, values))})"
    result = E(f"distinct-values({literal})")
    assert sorted(result) == sorted(set(values))


@settings(max_examples=40)
@given(st.lists(ints, max_size=8), st.lists(ints, max_size=8))
def test_sequence_concatenation_length(a, b):
    lit_a = f"({', '.join(map(str, a))})"
    lit_b = f"({', '.join(map(str, b))})"
    assert E(f"count(({lit_a}, {lit_b}))") == [len(a) + len(b)]


@settings(max_examples=40)
@given(st.integers(min_value=-999, max_value=999),
       st.integers(min_value=1, max_value=3))
def test_decimal_div_exact(a, scale):
    divisor = 2 ** scale
    result = E(f"{a} div {divisor}")[0]
    assert result == Decimal(a) / Decimal(divisor)


@settings(max_examples=30)
@given(st.lists(st.sampled_from("abc"), min_size=1, max_size=6))
def test_constructed_element_serialization_parses(letters):
    expr = "<r>" + "".join(f"<{c}/>" for c in letters) + "</r>"
    element = E(expr)[0]
    reparsed = parse(serialize(element))
    assert [e.name.local_name
            for e in reparsed.root_element.child_elements()] == letters
