"""The unified telemetry plane over a real multi-process cluster.

Acceptance (ISSUE 7): a message POSTed to the HTTP gateway can have its
full lifecycle stitched across OS-process boundaries by trace id, and
``GET /metrics`` serves valid Prometheus text aggregating every worker.
"""

import json
import os
import urllib.request

import pytest

from tests.netio.conftest import requires_net
from tests.obs.prom import parse_prometheus, total

from repro.netio import HttpGateway, ProcessCluster
from repro.network import build_envelope
from repro.obs import TRACE_PROPERTY, new_trace_id
from repro.xmldm import parse, serialize

pytestmark = requires_net

APP = """
create queue work kind basic mode persistent;
create queue done kind basic mode persistent;
create property reqID as xs:string fixed
    queue work value string(//job/@id);
create slicing byReq on reqID;
create rule crunch for work
    if (//job) then do enqueue <ack id="{string(//job/@id)}"/> into done
"""

JOBS = 8

LIFECYCLE = ("received", "routed", "enqueued", "scheduled",
             "executed", "committed")


def post(url, payload):
    request = urllib.request.Request(
        url, data=payload.encode("utf-8"), method="POST",
        headers={"Content-Type": "text/xml; charset=utf-8"})
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, response.read().decode("utf-8")


def get(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return (response.status, response.read().decode("utf-8"),
                response.headers.get("Content-Type", ""))


@pytest.fixture
def live(tmp_path):
    with ProcessCluster(APP, nodes=2,
                        data_dir=str(tmp_path / "cluster")) as cluster:
        with HttpGateway(cluster) as gateway:
            yield cluster, gateway


def trace_of(response_text):
    assert 'trace="' in response_text, response_text
    return response_text.split('trace="')[1].split('"')[0]


def test_lifecycle_stitches_across_process_boundaries(live):
    cluster, gateway = live
    status, text = post(f"{gateway.base_url}/enqueue/work",
                        '<job id="traced"/>')
    assert status == 202
    trace_id = trace_of(text)
    cluster.wait_idle()

    spans = cluster.trace(trace_id)
    events = [span["event"] for span in spans]
    for expected in LIFECYCLE:
        assert expected in events, (expected, events)
    # the whole journey crosses at least one OS-process boundary:
    # gateway/router spans live in the coordinator, the rest in a worker
    nodes = {span["node"] for span in spans}
    assert len(nodes) >= 2, nodes
    worker_nodes = nodes & set(cluster.node_names)
    assert worker_nodes, nodes
    # stitching is chronological
    times = [span["ts"] for span in spans]
    assert times == sorted(times)


def test_caller_supplied_trace_id_round_trips(live):
    cluster, gateway = live
    tid = new_trace_id()
    envelope = build_envelope(parse('<job id="mine"/>'),
                              {TRACE_PROPERTY: tid})
    _, text = post(f"{gateway.base_url}/enqueue/work", serialize(envelope))
    assert trace_of(text) == tid          # boundary keeps caller's id
    cluster.wait_idle()
    events = {span["event"] for span in cluster.trace(tid)}
    assert "committed" in events


def test_metrics_endpoint_serves_valid_prometheus(live):
    cluster, gateway = live
    for index in range(JOBS):
        post(f"{gateway.base_url}/enqueue/work", f'<job id="j{index}"/>')
    cluster.wait_idle()

    status, text, content_type = get(f"{gateway.base_url}/metrics")
    assert status == 200
    assert content_type.startswith("text/plain")
    samples = parse_prometheus(text)      # raises on malformed lines

    # gateway-side sentinels
    assert total(samples, "demaq_gateway_accepted_total") == JOBS
    assert total(samples, "demaq_gateway_request_seconds_count") == JOBS
    # worker-side sentinels, aggregated over both processes:
    # each job plus its ack runs the executor on some worker
    assert total(samples,
                 "demaq_executor_messages_processed_total") >= JOBS * 2
    assert total(samples, "demaq_store_inserts_total") >= JOBS * 2
    assert "demaq_wal_forces_total" in samples
    assert "demaq_scheduler_queue_backlog" in samples
    assert samples["__types__"]["demaq_gateway_request_seconds"] \
        == "histogram"


def test_worker_ctl_metrics_and_trace_ops(live):
    cluster, gateway = live
    post(f"{gateway.base_url}/enqueue/work", '<job id="ctl"/>')
    cluster.wait_idle()
    processed = 0
    for node in cluster.node_names:
        snapshot = cluster.worker_metrics(node)
        family = snapshot.get("demaq_executor_messages_processed_total")
        if family:
            processed += sum(row["value"] for row in family["series"])
        # every worker answers the trace op, even with no matching spans
        assert isinstance(cluster.worker_spans(node, "nope"), list)
    assert processed >= 2    # the job and its ack


def test_worker_stderr_spools_are_capped(tmp_path):
    cap = 4096
    with ProcessCluster(APP, nodes=2, data_dir=str(tmp_path / "cluster"),
                        spool_cap_bytes=cap) as cluster:
        for index in range(4):
            cluster.enqueue("work", f'<job id="s{index}"/>')
        cluster.wait_idle()
        for name, worker in cluster.workers.items():
            assert os.path.exists(worker.stderr_path)
            assert os.path.getsize(worker.stderr_path) <= cap
            # the boot line is structured JSON with the node name
            first = worker.spool.tail(100_000).splitlines()[0]
            entry = json.loads(first)
            assert entry["event"] == "boot"
            assert entry["node"] == name
        cluster.drain()
