"""The live HTTP gateway in front of a real process cluster.

External producers POST SOAP envelopes over HTTP; the gateway routes
them through the cluster router to worker processes over TCP; the WSDL
the paper derives from queue definitions is served live over GET.
"""

import urllib.error
import urllib.request

import pytest

from tests.netio.conftest import requires_net

from repro.netio import HttpGateway, ProcessCluster
from repro.network import build_envelope, parse_wsdl
from repro.xmldm import parse, serialize

pytestmark = requires_net

APP = """
create queue work kind basic mode persistent;
create queue done kind basic mode persistent;
create property reqID as xs:string fixed
    queue work value string(//job/@id);
create property urgency as xs:integer
    queue work value 0;
create slicing byReq on reqID;
create rule crunch for work
    if (//job) then do enqueue
        <ack id="{string(//job/@id)}"
             urgency="{qs:property('urgency')}"/> into done
"""

JOBS = 10


def post(url, payload):
    request = urllib.request.Request(
        url, data=payload.encode("utf-8"), method="POST",
        headers={"Content-Type": "text/xml; charset=utf-8"})
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, response.read().decode("utf-8")


def get(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.read().decode("utf-8")


@pytest.fixture
def live(tmp_path):
    with ProcessCluster(APP, nodes=2,
                        data_dir=str(tmp_path / "cluster")) as cluster:
        with HttpGateway(cluster) as gateway:
            yield cluster, gateway


def test_post_soap_envelopes_end_to_end(live):
    cluster, gateway = live
    nodes = set()
    for index in range(JOBS):
        envelope = build_envelope(parse(f'<job id="j{index}"/>'),
                                  {"urgency": index})
        status, text = post(f"{gateway.base_url}/enqueue/work",
                            serialize(envelope))
        assert status == 202
        assert 'queue="work"' in text
        nodes.add(text.split('node="')[1].split('"')[0])
    assert nodes <= {"node0", "node1"} and nodes

    cluster.wait_idle()
    acks = sorted(cluster.queue_texts("done"))
    assert acks == sorted(
        f'<ack id="j{i}" urgency="{i}"/>' for i in range(JOBS))
    assert gateway.accepted == JOBS


def test_post_bare_xml_document(live):
    cluster, gateway = live
    status, _ = post(f"{gateway.base_url}/enqueue/work", '<job id="bare"/>')
    assert status == 202
    cluster.wait_idle()
    assert any("bare" in text for text in cluster.queue_texts("done"))


def test_wsdl_served_live(live):
    _, gateway = live
    status, text = get(f"{gateway.base_url}/wsdl")
    assert status == 200
    description = parse_wsdl(text)
    addresses = {name: port.address
                 for name, port in description.ports.items()}
    assert addresses == {
        "workPort": f"{gateway.base_url}/enqueue/work",
        "donePort": f"{gateway.base_url}/enqueue/done",
    }


def test_health_and_error_paths(live):
    _, gateway = live
    assert get(f"{gateway.base_url}/health")[0] == 200

    with pytest.raises(urllib.error.HTTPError) as not_found:
        post(f"{gateway.base_url}/enqueue/nosuch", "<x/>")
    assert not_found.value.code == 404

    with pytest.raises(urllib.error.HTTPError) as bad_xml:
        post(f"{gateway.base_url}/enqueue/work", "<unclosed")
    assert bad_xml.value.code == 400

    with pytest.raises(urllib.error.HTTPError) as wrong_path:
        get(f"{gateway.base_url}/nope")
    assert wrong_path.value.code == 404
