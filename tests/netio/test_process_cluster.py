"""Multi-process cluster: boot, shard, quiesce, drain — all over TCP.

Each node is its own OS process with its own store and WAL; the
coordinator only ever talks to it through the socket transport.  The
acceptance bar (ISSUE 6): a 2-process cluster boots, ingests through
the router, spreads sliced work across both processes, reaches
quiescence, and drains cleanly (exit code 0, durable stores).
"""

import os
import signal
import time

import pytest

from tests.netio.conftest import requires_net

from repro.netio import ProcessCluster

pytestmark = requires_net

SHARDED = """
create queue work kind basic mode persistent;
create queue done kind basic mode persistent;
create queue echoQueue kind echo mode persistent;
create property reqID as xs:string fixed
    queue work value string(//job/@id);
create slicing byReq on reqID;
create rule crunch for work
    if (//job) then do enqueue <ack id="{string(//job/@id)}"/> into done
"""

JOBS = 24


def job(index):
    return f'<job id="j{index}"/>'


def test_two_process_cluster_processes_and_drains(tmp_path):
    with ProcessCluster(SHARDED, nodes=2,
                        data_dir=str(tmp_path / "cluster"),
                        server_kwargs={"durability": "group"}) as cluster:
        owners = {cluster.enqueue("work", job(i)) for i in range(JOBS)}
        cluster.wait_idle()

        assert cluster.queue_depth("done") == JOBS
        acks = sorted(cluster.queue_texts("done"))
        assert acks == sorted(f'<ack id="j{i}"/>' for i in range(JOBS))
        # sliced work really spread over both processes
        assert owners == {"node0", "node1"}
        depths = cluster.shard_depths("done")
        assert all(depth > 0 for depth in depths.values())
        # every work message plus every ack it produced went through
        # the scheduler→executor path on some process
        assert cluster.messages_processed() == JOBS * 2

        cluster.drain()
        codes = {name: worker.proc.returncode
                 for name, worker in cluster.workers.items()}
        assert codes == {"node0": 0, "node1": 0}

    # the drain left durable stores: every node directory has a WAL
    for node in ("node0", "node1"):
        assert (tmp_path / "cluster" / node).is_dir()


def test_sigterm_drains_gracefully(tmp_path):
    """SIGTERM is a graceful drain, not a kill: exit 0, work durable."""
    with ProcessCluster(SHARDED, nodes=2,
                        data_dir=str(tmp_path / "cluster"),
                        server_kwargs={"durability": "group"}) as cluster:
        for index in range(JOBS):
            cluster.enqueue("work", job(index))
        cluster.wait_idle()
        done_before = cluster.queue_depth("done")

        for worker in cluster.workers.values():
            os.kill(worker.proc.pid, signal.SIGTERM)
        deadline = time.monotonic() + 15.0
        for worker in cluster.workers.values():
            worker.proc.wait(timeout=max(0.1, deadline - time.monotonic()))
            assert worker.proc.returncode == 0

    # a rebooted cluster on the same directories still has everything
    with ProcessCluster(SHARDED, nodes=2,
                        data_dir=str(tmp_path / "cluster"),
                        server_kwargs={"durability": "group"}) as cluster:
        cluster.wait_idle()
        assert cluster.queue_depth("done") == done_before
        cluster.drain()


def test_add_node_rebalances_over_sockets(tmp_path):
    """A third process joins live; misplaced unprocessed messages ride
    the socket transport to their new owners and nothing is lost."""
    with ProcessCluster(SHARDED, nodes=2,
                        data_dir=str(tmp_path / "cluster")) as cluster:
        # park unprocessed messages: far-future echoes sit in the store
        # until their timer fires, so they are live rebalance cargo
        for index in range(JOBS):
            cluster.enqueue("echoQueue", job(index),
                            properties={"timeout": 3600, "target": "work"})
        cluster.wait_idle()
        assert cluster.queue_depth("echoQueue") == JOBS

        moved = cluster.add_node("node2")
        # 24 distinct slice keys: the new ring owns some of them
        assert moved > 0
        assert cluster.queue_depth("echoQueue") == JOBS      # none lost
        assert cluster.shard_depths("echoQueue")["node2"] == moved

        # the grown cluster still processes sliced work on all 3 nodes
        for index in range(JOBS, JOBS * 2):
            cluster.enqueue("work", job(index))
        cluster.wait_idle()
        assert sorted(cluster.queue_texts("done")) == \
            sorted(f'<ack id="j{i}"/>' for i in range(JOBS, JOBS * 2))
        assert int(cluster.status("node2")["processed"]) > 0
        cluster.drain()


def test_worker_crash_is_reported(tmp_path):
    with ProcessCluster(SHARDED, nodes=2) as cluster:
        cluster.enqueue("work", job(1))
        cluster.wait_idle()
        victim = cluster.workers["node0"]
        victim.proc.kill()
        victim.proc.wait()
        with pytest.raises(Exception, match="node0.*exited"):
            cluster.wait_idle(timeout=5.0)
