"""Socket transport: delivery, failure markers, reconnect, fidelity.

The acceptance contract (ISSUE 6): delivery works end to end, failures
surface the §3.6 markers (``disconnectedTransport`` for unreachable /
unregistered endpoints, ``deliveryTimeout`` for injected failures), a
restarted peer is reachable again over a fresh connection, and SOAP
envelopes survive the serialize → TCP → parse hop byte-identically to
the simulated transport.
"""

import time
from decimal import Decimal

import pytest

from tests.netio.conftest import pump_until, requires_net

from repro.netio import SocketTransport
from repro.network import (EndpointCollisionError, Network, build_envelope,
                          parse_envelope)
from repro.queues import VirtualClock
from repro.xmldm import parse, serialize
from repro.xquery.atomics import XSDateTime

pytestmark = requires_net


def envelope(markup="<m/>", properties=None):
    return build_envelope(parse(markup), properties or {})


# -- delivery ---------------------------------------------------------------------


def test_delivery_across_tcp(transport_pair):
    ta, tb = transport_pair
    received = []
    tb.register("demaq://b/in",
                lambda env, src: received.append((serialize(env), src)))
    outcomes = []
    ta.send("demaq://b/in", envelope("<hello/>"), source="demaq://a",
            on_delivered=lambda: outcomes.append("delivered"))
    assert pump_until(lambda: outcomes, tb, ta)
    assert outcomes == ["delivered"]
    assert len(received) == 1
    assert received[0][1] == "demaq://a"
    assert "<hello/>" in received[0][0]
    assert tb.delivered == 1 and ta.sent == 1


def test_loopback_delivery_still_crosses_serialization(transport_pair):
    ta, _ = transport_pair
    received = []
    ta.register("demaq://a/self", lambda env, src: received.append(env))
    ta.send("demaq://a/self", envelope("<loop/>"))
    assert pump_until(lambda: received, ta)
    # the delivered document is a fresh parse, not the sent object
    assert received[0].root_element.name.local_name == "Envelope"


def test_ack_arrives_after_handler_ran(transport_pair):
    """A delivered callback means the receiver's handler completed."""
    ta, tb = transport_pair
    order = []
    tb.register("demaq://b/in", lambda env, src: order.append("handled"))
    ta.send("demaq://b/in", envelope(),
            on_delivered=lambda: order.append("acked"))
    assert pump_until(lambda: len(order) == 2, tb, ta)
    assert order == ["handled", "acked"]


# -- failure paths ----------------------------------------------------------------


def test_unregistered_endpoint_fails_disconnected(transport_pair):
    ta, tb = transport_pair
    failures = []
    ta.send("demaq://b/nowhere", envelope(), on_failed=failures.append)
    assert pump_until(lambda: failures, tb, ta)
    assert failures == ["disconnectedTransport"]


def test_unknown_node_fails_disconnected(transport_pair):
    ta, _ = transport_pair
    failures = []
    ta.send("demaq://nobody/in", envelope(), on_failed=failures.append)
    assert pump_until(lambda: failures, ta)
    assert failures == ["disconnectedTransport"]


def test_down_endpoint_fails_and_recovers(transport_pair):
    ta, tb = transport_pair
    outcomes = []
    tb.register("demaq://b/in", lambda env, src: outcomes.append("ok"))
    tb.set_down("demaq://b/in")
    ta.send("demaq://b/in", envelope(), on_failed=outcomes.append)
    assert pump_until(lambda: outcomes, tb, ta)
    tb.set_down("demaq://b/in", down=False)
    ta.send("demaq://b/in", envelope(),
            on_delivered=lambda: outcomes.append("acked"))
    assert pump_until(lambda: len(outcomes) == 3, tb, ta)
    assert outcomes == ["disconnectedTransport", "ok", "acked"]


def test_fail_next_injects_delivery_timeouts(transport_pair):
    ta, tb = transport_pair
    outcomes = []
    tb.register("demaq://b/in", lambda env, src: outcomes.append("ok"))
    tb.fail_next("demaq://b/in", 2)
    for expected in (1, 2, 4):    # one outcome per failed send, two for ok
        ta.send("demaq://b/in", envelope(),
                on_delivered=lambda: outcomes.append("acked"),
                on_failed=outcomes.append)
        assert pump_until(lambda: len(outcomes) >= expected, tb, ta)
    assert outcomes == ["deliveryTimeout", "deliveryTimeout", "ok", "acked"]


def test_handler_error_fails_the_send(transport_pair):
    ta, tb = transport_pair

    def explode(env, src):
        raise RuntimeError("boom")

    tb.register("demaq://b/in", explode)
    failures = []
    ta.send("demaq://b/in", envelope(), on_failed=failures.append)
    assert pump_until(lambda: failures, tb, ta)
    assert failures == ["deliveryTimeout"]
    assert len(tb.handler_errors) == 1


def test_dead_peer_fails_then_reconnect_succeeds(transport_pair):
    ta, tb = transport_pair
    tb.register("demaq://b/in", lambda env, src: None)
    tb.close()
    time.sleep(0.05)
    outcomes = []
    ta.send("demaq://b/in", envelope(), on_failed=outcomes.append)
    assert pump_until(lambda: outcomes, ta)
    assert outcomes == ["disconnectedTransport"]

    # a new transport on the same port is reachable over a fresh dial
    revived = SocketTransport("b", ta.addresses)
    try:
        received = []
        revived.register("demaq://b/in",
                         lambda env, src: received.append(1))
        ta.send("demaq://b/in", envelope(),
                on_delivered=lambda: outcomes.append("acked"),
                on_failed=outcomes.append)
        assert pump_until(lambda: len(outcomes) == 2, revived, ta)
        assert outcomes == ["disconnectedTransport", "acked"]
        assert received == [1]
    finally:
        revived.close()


def test_lost_ack_times_out(transport_pair):
    """An ack that never comes resolves as deliveryTimeout, not a hang."""
    ta, tb = transport_pair
    ta.ack_timeout = 0.2
    # handler blocks the receiver's pump loop from ever acking by
    # simply never being pumped: register but do not pump tb
    tb.register("demaq://b/in", lambda env, src: None)
    failures = []
    ta.send("demaq://b/in", envelope(), on_failed=failures.append)
    assert pump_until(lambda: failures, ta, timeout=2.0)   # only ta pumps
    assert failures == ["deliveryTimeout"]


def test_duplicate_registration_rejected(transport_pair):
    ta, _ = transport_pair
    ta.register("demaq://a/x", lambda env, src: None)
    with pytest.raises(EndpointCollisionError):
        ta.register("demaq://a/x", lambda env, src: None)


# -- envelope fidelity over the wire (ISSUE 6 satellite) --------------------------

ALL_TYPES = {
    "string": "plain",
    "unicode": "héllo — 日本語 🙂 <>&\"'",
    "integer": 42,
    "negative": -7,
    "double": 1.5,
    "boolean_t": True,
    "boolean_f": False,
    "decimal": Decimal("123.450"),
    "datetime": XSDateTime.parse("2026-08-07T12:30:00Z"),
}

BODIES = [
    "<order><id>7</id></order>",
    "<note>non-ASCII: ünïcödé — 中文 — emoji 🙂</note>",
    "<nested a=\"x&amp;y\"><b><c>deep &lt;text&gt;</c></b></nested>",
    "<mixed>text <b>bold</b> tail</mixed>",
]


def test_envelope_round_trip_fidelity_over_tcp(transport_pair):
    """Every property type and non-ASCII payloads survive the
    serialize → TCP → parse hop with values and types intact."""
    ta, tb = transport_pair
    received = []
    tb.register("demaq://b/in", lambda env, src: received.append(env))
    for markup in BODIES:
        ta.send("demaq://b/in", build_envelope(parse(markup), ALL_TYPES))
    assert pump_until(lambda: len(received) == len(BODIES), tb, ta)
    for markup, env in zip(BODIES, received):
        body, properties = parse_envelope(env)
        assert serialize(body) == serialize(parse(markup))
        assert properties == ALL_TYPES
        for key, value in properties.items():
            assert type(value) is type(ALL_TYPES[key]), key


def test_simulated_and_socket_transports_deliver_identical_envelopes(
        transport_pair):
    """Differential: the same send sequence yields byte-identical
    envelopes (and identical source strings) over both backends."""
    sends = [(f"demaq://b/in{i % 2}",
              build_envelope(parse(markup),
                             {"seq": i, **ALL_TYPES}),
              f"demaq://a/src{i}")
             for i, markup in enumerate(BODIES * 2)]

    # simulated backend
    network = Network(VirtualClock())
    simulated = []
    for suffix in ("0", "1"):
        network.register(f"demaq://b/in{suffix}",
                         lambda env, src: simulated.append(
                             (serialize(env), src)))
    for endpoint, env, source in sends:
        network.send(endpoint, env, source=source)
    network.pump()

    # socket backend
    ta, tb = transport_pair
    socketed = []
    for suffix in ("0", "1"):
        tb.register(f"demaq://b/in{suffix}",
                    lambda env, src: socketed.append(
                        (serialize(env), src)))
    for endpoint, env, source in sends:
        ta.send(endpoint, env, source=source)
    assert pump_until(lambda: len(socketed) == len(sends), tb, ta)

    assert simulated == socketed
