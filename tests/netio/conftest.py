"""Shared gating and plumbing for the socket-transport test modules.

Everything under ``tests/netio`` opens real TCP sockets and forks OS
processes, so it is opt-in: set ``DEMAQ_NET_TESTS=1`` (the CI
``net-smoke`` job does).  The tier-1 suite runs entirely on the
simulated transport with no sockets opened.
"""

import os
import time

import pytest

NET_TESTS = os.environ.get("DEMAQ_NET_TESTS", "") not in ("", "0")

requires_net = pytest.mark.skipif(
    not NET_TESTS,
    reason="socket tests are opt-in: set DEMAQ_NET_TESTS=1 "
           "(tier-1 stays on the simulated transport)")


def pump_until(condition, *transports, timeout=5.0, interval=0.005):
    """Pump every transport until *condition()* or the timeout."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        for transport in transports:
            transport.pump()
        if condition():
            return True
        time.sleep(interval)
    return condition()


@pytest.fixture()
def transport_pair():
    """Two connected SocketTransports on ephemeral localhost ports."""
    from repro.netio import SocketTransport

    book = {"a": ("127.0.0.1", 0), "b": ("127.0.0.1", 0)}
    ta = SocketTransport("a", book)
    book["a"] = (ta.host, ta.port)
    tb = SocketTransport("b", book)
    book["b"] = (tb.host, tb.port)
    ta.addresses["b"] = book["b"]
    try:
        yield ta, tb
    finally:
        ta.close()
        tb.close()
