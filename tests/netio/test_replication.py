"""Replication + fault injection over real processes and sockets.

The acceptance drills for the replicated cluster: SIGKILL a primary
mid-load and lose no acknowledged commit; a chaos self-kill between
COMMIT-append and force; a restarted zombie fenced by epoch; the
coordinator's drain escalation against a wedged worker; the gateway's
503/Retry-After mapping; connect-retry budgets and deterministic frame
chaos on the transport itself.

Gated like every socket suite: ``DEMAQ_NET_TESTS=1``.
"""

import os
import signal
import threading
import time
import urllib.error
import urllib.request

import pytest

from tests.netio.conftest import pump_until, requires_net

from repro.netio import HttpGateway, ProcessCluster, SocketTransport
from repro.netio.process import free_port
from repro.netio.transport import ChaosPlan
from repro.network import build_envelope
from repro.network.base import DISCONNECTED, TIMEOUT
from repro.xmldm import parse

pytestmark = requires_net

SHARDED = """
create queue work kind basic mode persistent;
create queue done kind basic mode persistent;
create property reqID as xs:string fixed
    queue work value string(//job/@id);
create slicing byReq on reqID;
create rule crunch for work
    if (//job) then do enqueue <ack id="{string(//job/@id)}"/> into done
"""


def job(index):
    return f'<job id="j{index}"/>'


def enqueue_tracked(cluster, index, acked, timeout=5.0):
    """Enqueue one job; record its id in *acked* iff delivery confirmed."""
    settled = threading.Event()
    outcome = {}

    def on_delivered():
        outcome["ok"] = True
        settled.set()

    def on_failed(marker):
        outcome["marker"] = marker
        settled.set()

    cluster.enqueue("work", job(index), on_delivered=on_delivered,
                    on_failed=on_failed)
    deadline = time.monotonic() + timeout
    while not settled.is_set() and time.monotonic() < deadline:
        cluster.pump()
        time.sleep(0.002)
    if outcome.get("ok"):
        acked.add(f"j{index}")
    return outcome


def done_ids(cluster):
    return {text.split('"')[1] for text in cluster.queue_texts("done")}


class TestFailover:
    def test_sigkill_primary_mid_load_loses_no_acked_commit(self, tmp_path):
        """The tentpole acceptance drill: kill -9 a shard host while
        producers are writing under ``replica-ack``; the replica is
        promoted and every acknowledged commit survives."""
        with ProcessCluster(SHARDED, nodes=3,
                            data_dir=str(tmp_path / "cluster"),
                            server_kwargs={"durability": "replica-ack"},
                            replication=True, replicas=1) as cluster:
            acked: set[str] = set()
            for index in range(20):
                enqueue_tracked(cluster, index, acked)
            cluster.wait_idle()
            depths = cluster.shard_depths("done")
            victim = max(depths, key=depths.get)

            os.kill(cluster.workers[victim].proc.pid, signal.SIGKILL)
            cluster.workers[victim].proc.wait()
            # mid-load: keep writing while the coordinator has not yet
            # noticed the crash — sends to the dead shard fail (the
            # producer sees the failure and does not count them acked),
            # the other shards keep confirming
            for index in range(20, 35):
                enqueue_tracked(cluster, index, acked)
            cluster.check()                       # detect + promote
            assert cluster.hosting[victim] != victim
            # after failover every shard (including the promoted one,
            # reached under the dead node's name) confirms again
            for index in range(35, 45):
                outcome = enqueue_tracked(cluster, index, acked)
                assert outcome.get("ok"), outcome
            cluster.wait_idle()

            missing = acked - done_ids(cluster)
            assert not missing, \
                f"acknowledged commits lost in failover: {missing}"
            assert cluster.metrics.values()[
                "demaq_cluster_failovers_total"] == 1
            assert cluster.drain() == {}

    def test_chaos_kill_between_commit_append_and_force(self, tmp_path):
        """The worker SIGKILLs itself inside the commit hook — after
        the COMMIT record is appended, before any force: the torn
        window.  Acknowledged work must still all survive promotion."""
        with ProcessCluster(SHARDED, nodes=3,
                            data_dir=str(tmp_path / "cluster"),
                            server_kwargs={"durability": "replica-ack"},
                            replication=True, replicas=1,
                            chaos={"node0": {"kill_after_commits": 6}}
                            ) as cluster:
            acked: set[str] = set()
            index = 0
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                enqueue_tracked(cluster, index, acked)
                index += 1
                worker = cluster.workers.get("node0")
                if worker is not None and worker.proc.poll() is not None:
                    cluster.check()               # reap + promote
                    break
            assert "node0" in cluster.failed_workers, \
                "chaos kill_after_commits never fired"
            for _ in range(10):
                enqueue_tracked(cluster, index, acked)
                index += 1
            cluster.wait_idle()
            missing = acked - done_ids(cluster)
            assert not missing, \
                f"acked commits lost across the chaos kill: {missing}"
            cluster.drain()

    def test_restarted_zombie_is_fenced(self, tmp_path):
        """After failover the old primary reboots with its stale epoch:
        its first shipper probe draws a fence verdict, it stops its
        shard, and the promoted host keeps serving under the name."""
        with ProcessCluster(SHARDED, nodes=3,
                            data_dir=str(tmp_path / "cluster"),
                            server_kwargs={"durability": "replica-ack"},
                            replication=True, replicas=1) as cluster:
            acked: set[str] = set()
            for index in range(12):
                enqueue_tracked(cluster, index, acked)
            cluster.wait_idle()
            victim = "node1"
            os.kill(cluster.workers[victim].proc.pid, signal.SIGKILL)
            cluster.workers[victim].proc.wait()
            cluster.check()
            assert cluster.hosting[victim] != victim

            cluster.restart_zombie(victim)
            assert cluster.wait_zombie_fenced(victim, timeout=20.0), \
                cluster.zombies[victim].spool.tail(4000)
            # the healthy cluster lost nothing and still confirms
            # writes for every shard, the zombie's included
            cluster.wait_idle()
            assert acked <= done_ids(cluster)
            for index in range(12, 20):
                outcome = enqueue_tracked(cluster, index, acked)
                assert outcome.get("ok"), outcome
            cluster.wait_idle()
            assert acked <= done_ids(cluster)
            cluster.drain()


class TestDrainEscalation:
    def test_wedged_worker_is_escalated_to_sigkill(self, tmp_path):
        """A wedged worker (alive, port bound, ignoring SIGTERM) must
        not hang the drain: the stop RPC times out, SIGTERM is ignored,
        SIGKILL lands, and every child is reaped."""
        with ProcessCluster(SHARDED, nodes=2,
                            data_dir=str(tmp_path / "cluster")) as cluster:
            cluster.enqueue("work", job(1))
            cluster.wait_idle()
            cluster._rpc("node1", "wedge")
            escalated = cluster.drain(timeout=10.0, stop_timeout=2.0,
                                      escalation_timeout=2.0)
            assert escalated.get("node1") == "sigkill"
            assert "node0" not in escalated
            assert cluster.workers["node0"].proc.returncode == 0
            assert cluster.workers["node1"].proc.returncode is not None


class TestGatewayBackpressure:
    def test_owner_loss_maps_to_503_with_retry_after(self, tmp_path):
        with ProcessCluster(SHARDED, nodes=2,
                            data_dir=str(tmp_path / "cluster")) as cluster:
            with HttpGateway(cluster) as gateway:
                url = f"{gateway.base_url}/enqueue/work"
                # one job id per owner, then kill node1
                owned_by = {}
                for index in range(50):
                    owner = cluster.router.owner_of("work",
                                                    parse(job(index)))
                    owned_by.setdefault(owner, index)
                    if len(owned_by) == 2:
                        break
                victim = "node1"
                assert victim in owned_by
                os.kill(cluster.workers[victim].proc.pid, signal.SIGKILL)
                cluster.workers[victim].proc.wait()

                request = urllib.request.Request(
                    url, data=job(owned_by[victim]).encode(),
                    method="POST",
                    headers={"Content-Type": "text/xml"})
                with pytest.raises(urllib.error.HTTPError) as caught:
                    urllib.request.urlopen(request, timeout=15)
                assert caught.value.code == 503
                assert caught.value.headers.get("Retry-After") == "1"
                body = caught.value.read().decode()
                assert DISCONNECTED in body or TIMEOUT in body

                # the surviving shard still answers 202
                request = urllib.request.Request(
                    url, data=job(owned_by["node0"]).encode(),
                    method="POST",
                    headers={"Content-Type": "text/xml"})
                with urllib.request.urlopen(request, timeout=15) as resp:
                    assert resp.status == 202

                rows = gateway.metrics.snapshot()[
                    "demaq_gateway_rejected_total"]["series"]
                reasons = {row["labels"].get("reason"): row["value"]
                           for row in rows if row["labels"]}
                assert sum(reasons.get(marker, 0)
                           for marker in (DISCONNECTED, TIMEOUT)) >= 1, \
                    reasons


class TestTransportHardening:
    def test_connect_retry_budget_then_disconnected(self):
        dead = ("127.0.0.1", free_port())
        transport = SocketTransport("a", {"a": ("127.0.0.1", 0),
                                          "ghost": dead})
        try:
            failures = []
            transport.send("demaq://ghost/!shard-work",
                           build_envelope(parse("<j/>"), {}),
                           source="demaq://a/x",
                           on_failed=failures.append)
            pump_until(lambda: failures, transport, timeout=5.0)
            assert failures == [DISCONNECTED]
            # the full-jitter retry budget ran before giving up
            assert transport.connect_retry_sleeps \
                == transport.connect_retries - 1
        finally:
            transport.close()

    def test_chaos_plan_drops_dupes_and_delays(self, transport_pair):
        ta, tb = transport_pair
        received = []
        tb.register("demaq://b/inbox",
                    lambda envelope, source: received.append(source))
        ta.ack_timeout = 0.5
        ta.chaos = ChaosPlan(drop=1, duplicate=1, delay=1,
                             delay_seconds=0.05)
        failures = []
        for index in range(5):
            ta.send("demaq://b/inbox", build_envelope(parse("<m/>"), {}),
                    source=f"demaq://a/{index}",
                    on_failed=failures.append)
        pump_until(lambda: len(received) >= 4 and failures,
                   ta, tb, timeout=10.0)
        assert ta.chaos.dropped == 1
        assert ta.chaos.duplicated == 1
        assert ta.chaos.delayed == 1
        # the dropped frame surfaced as a §3.6 timeout at the sender
        assert failures and failures[0] == TIMEOUT
        # at-least-once: everything not dropped arrived (the duplicated
        # frame may deliver twice; it must deliver at least once)
        assert len(received) >= 4
