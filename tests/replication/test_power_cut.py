"""Power-cut drills: primary AND replica die at adversarial points.

``replica-ack`` is single-fault tolerant: an acked commit survives the
loss of either the primary or the replica.  When BOTH die (a rack
power cut), what must still hold is *consistency*, not durability —
each side recovers to a committed prefix of the shared WAL stream, no
torn transactions, no invented state, and the survivors' prefixes
agree byte-for-byte.  These drills kill both sides at the nastiest
points: between COMMIT-append and force on the primary, and mid-ship
on the replica.
"""

import base64

from repro.storage import MessageStore
from repro.replication import ReplicaApplier

from tests.replication.conftest import commit_message, wire_replica


def bodies(store, queue="q"):
    return sorted(store.body_text(meta.msg_id)
                  for meta in store.queue_messages(queue))


class TestPowerCut:
    def test_both_die_after_ack_before_force(self, tmp_path):
        """Primary killed in the COMMIT-append → force window, replica
        killed before its standby flush: each side recovers to a clean
        committed prefix and the prefixes agree."""
        primary = MessageStore(str(tmp_path / "primary"),
                               durability="replica-ack")
        wire, shipper, applier = wire_replica(
            primary, standby_dir=str(tmp_path / "standby"))
        for index in range(5):
            commit_message(primary, f"<m n='{index}'/>".encode())
        acked = shipper.acked_lsn()
        assert acked == primary.wal.end_lsn()
        # power cut: the primary loses its unforced tail (replica-ack
        # deferred the fsync), the replica loses its unflushed standby
        # bytes (it acked from memory) — the worst legal double fault
        primary.simulate_crash(lose_unflushed=True)
        applier.wal.discard_unflushed()
        applier.wal.close()

        reborn_primary = MessageStore(str(tmp_path / "primary"),
                                      durability="sync")
        survivor = ReplicaApplier("p", "r", epoch=0,
                                  standby_dir=str(tmp_path / "standby"))
        promoted = survivor.promote(epoch=1)
        # consistency: both recover committed prefixes of ONE stream
        shorter = min(reborn_primary.wal.end_lsn(),
                      promoted.wal.end_lsn())
        assert reborn_primary.wal.read_bytes(0, shorter) == \
            promoted.wal.read_bytes(0, shorter)
        for body in bodies(promoted):
            assert body.startswith("<m n=")
        for body in bodies(reborn_primary):
            assert body.startswith("<m n=")
        reborn_primary.close()
        promoted.close()

    def test_replica_flush_bounds_double_fault_loss(self, tmp_path):
        """With the standby flushed, a double power cut loses nothing
        that was acked: the promoted replica has every commit."""
        primary = MessageStore(str(tmp_path / "primary"),
                               durability="replica-ack")
        wire, shipper, applier = wire_replica(
            primary, standby_dir=str(tmp_path / "standby"))
        for index in range(5):
            commit_message(primary, f"<m n='{index}'/>".encode())
        applier.flush()                            # standby made durable
        primary.simulate_crash(lose_unflushed=True)
        applier.wal.close()

        survivor = ReplicaApplier("p", "r", epoch=0,
                                  standby_dir=str(tmp_path / "standby"))
        promoted = survivor.promote(epoch=1)
        assert bodies(promoted) == sorted(f"<m n='{index}'/>"
                                          for index in range(5))
        promoted.close()

    def test_replica_dies_mid_ship_primary_dies_unforced(self, tmp_path):
        """The replica crashes holding a torn fragment on disk AND the
        primary crashes with an unforced tail: promotion of the
        recovered standby yields only whole committed transactions."""
        primary = MessageStore(str(tmp_path / "primary"),
                               durability="sync")
        wire, shipper, applier = wire_replica(
            primary, standby_dir=str(tmp_path / "standby"))
        commit_message(primary, b"<safe/>")
        shipper.set_replicas([])                   # detach auto-repair
        clean_end = primary.wal.end_lsn()
        commit_message(primary, b"<doomed/>")
        raw = primary.wal.read_bytes(clean_end, primary.wal.end_lsn())
        torn = raw[:max(1, len(raw) - 7)]          # mid-record cut
        applier.receive({"kind": "repl", "op": "append", "primary": "p",
                         "epoch": 0, "start": clean_end,
                         "data": base64.b64encode(torn).decode("ascii")})
        applier.flush()                            # torn bytes hit disk
        applier.wal.close()

        survivor = ReplicaApplier("p", "r", epoch=0,
                                  standby_dir=str(tmp_path / "standby"))
        promoted = survivor.promote(epoch=1)
        assert bodies(promoted) == ["<safe/>"]     # no torn replay
        promoted.close()
        primary.close()
