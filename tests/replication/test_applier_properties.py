"""Property: the applier is idempotent under adversarial delivery.

Hypothesis drives the shipped-segment schedule — arbitrary splits of
the primary's WAL bytes, duplicated, reordered, and optionally torn —
and the invariants must hold at every step:

* the standby WAL is always a byte-prefix of the primary's log (acks
  never claim bytes the replica does not hold);
* after enough delivery attempts the standby converges to the full
  prefix, and the promoted store equals the primary, no matter the
  order or multiplicity of segments.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import MessageStore

from tests.replication.conftest import commit_message, wire_replica
import base64

from repro.replication import ReplicaApplier


def build_primary(message_count):
    store = MessageStore(durability="sync")
    for index in range(message_count):
        commit_message(store, f"<m n='{index}'/>".encode())
    return store


def segment_frames(raw, cut_points):
    """Split raw WAL bytes into append frames at the given offsets."""
    bounds = sorted({0, len(raw), *[p % (len(raw) + 1) for p in cut_points]})
    frames = []
    for start, end in zip(bounds, bounds[1:]):
        frames.append({"kind": "repl", "op": "append", "primary": "p",
                       "epoch": 0, "start": start,
                       "data": base64.b64encode(
                           raw[start:end]).decode("ascii")})
    return frames


@settings(max_examples=40, deadline=None)
@given(message_count=st.integers(min_value=1, max_value=6),
       cut_points=st.lists(st.integers(min_value=0, max_value=4096),
                           max_size=8),
       order=st.randoms(use_true_random=False),
       duplicates=st.integers(min_value=0, max_value=3))
def test_duplicated_reordered_delivery_converges(message_count, cut_points,
                                                 order, duplicates):
    store = build_primary(message_count)
    end = store.wal.end_lsn()
    raw = store.wal.read_bytes(0, end)
    frames = segment_frames(raw, cut_points)
    schedule = frames + [dict(f) for f in order.sample(
        frames, min(duplicates, len(frames)))]
    order.shuffle(schedule)

    applier = ReplicaApplier("p", "r")
    for frame in schedule:
        reply = applier.receive(dict(frame))
        assert reply["op"] == "ack"
        acked = reply["lsn"]
        # invariant: every acked byte is held and identical
        assert applier.wal.read_bytes(0, acked) == raw[:acked]
    # a second in-order pass models the shipper's gap repair: after it,
    # the standby must hold the complete prefix exactly once
    for frame in frames:
        applier.receive(dict(frame))
    assert applier.end_lsn() == end
    assert applier.wal.read_bytes(0, end) == raw
    promoted = applier.promote(epoch=1)
    assert promoted.queue_depth("q") == store.queue_depth("q")
    assert sorted(promoted.body_text(m.msg_id)
                  for m in promoted.queue_messages("q")) == \
        sorted(store.body_text(m.msg_id)
               for m in store.queue_messages("q"))


@settings(max_examples=30, deadline=None)
@given(message_count=st.integers(min_value=1, max_value=5),
       torn_at=st.integers(min_value=1, max_value=4096),
       data=st.data())
def test_torn_tail_never_corrupts_promoted_state(message_count, torn_at,
                                                 data):
    """Delivery that ends mid-record (primary crashed mid-ship) leaves
    a standby that promotes to a committed-prefix state."""
    store = build_primary(message_count)
    end = store.wal.end_lsn()
    raw = store.wal.read_bytes(0, end)
    clean = data.draw(st.integers(min_value=0, max_value=message_count),
                      label="clean_prefix_txns")
    # ship some whole-transaction prefix, then a torn fragment
    prefix_store = build_primary(clean) if clean else None
    prefix_len = prefix_store.wal.end_lsn() if prefix_store else 0
    torn_end = min(end, prefix_len + (torn_at % (end - prefix_len + 1)))
    applier = ReplicaApplier("p", "r")
    applier.receive({"kind": "repl", "op": "append", "primary": "p",
                     "epoch": 0, "start": 0,
                     "data": base64.b64encode(
                         raw[:torn_end]).decode("ascii")})
    promoted = applier.promote(epoch=1)
    # every message in the promoted store is a message the primary
    # committed — never a partial or invented one
    primary_bodies = {store.body_text(m.msg_id)
                      for m in store.queue_messages("q")}
    for meta in promoted.queue_messages("q"):
        assert promoted.body_text(meta.msg_id) in primary_bodies
    if prefix_store is not None:
        prefix_store.close()
    store.close()
