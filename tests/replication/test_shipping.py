"""WAL shipping, the replica-ack policy, and epoch fencing (tier 1).

The wire here is an in-process loopback carrying the exact frame
protocol the socket cluster uses; the invariants under test are the
ones DESIGN.md §9 promises:

* the standby WAL is byte-identical to the primary's shipped prefix;
* ``replica-ack`` commits acknowledge once one replica holds the
  commit's bytes, with deferred local fsync — and fall back to an
  inline force whenever no replica can confirm (never weaker than
  ``sync``);
* a stale-epoch shipper is permanently fenced by any replica that has
  seen a newer epoch.
"""

import pytest

from repro.storage import MessageStore

from tests.replication.conftest import Wire, commit_message, wire_replica


class TestShipping:
    def test_standby_mirrors_primary_bytes(self):
        store = MessageStore(durability="sync")
        wire, shipper, applier = wire_replica(store)
        for index in range(8):
            commit_message(store, f"<m n='{index}'/>".encode())
        end = store.wal.end_lsn()
        assert applier.end_lsn() == end
        assert shipper.acked_lsn() == end
        assert shipper.lag_bytes() == 0
        assert applier.wal.read_bytes(0, end) == store.wal.read_bytes(0, end)
        assert applier.applied_records == 8 * 3    # BEGIN+INSERT+COMMIT

    def test_dropped_frame_is_resent_after_gap_ack(self):
        store = MessageStore(durability="sync")
        wire, shipper, applier = wire_replica(store)
        commit_message(store, b"<a/>")
        wire.drop_next = 1
        commit_message(store, b"<b/>")             # this segment vanishes
        assert applier.end_lsn() < store.wal.end_lsn()
        # next commit ships a segment starting past the replica's end;
        # the gap ack rewinds the shipper, the one after resends all
        commit_message(store, b"<c/>")
        shipper.ship()
        assert applier.end_lsn() == store.wal.end_lsn()
        assert wire.dropped_frames == 1

    def test_duplicate_delivery_is_idempotent(self):
        store = MessageStore(durability="sync")
        wire, shipper, applier = wire_replica(store)
        commit_message(store, b"<a/>")
        end = store.wal.end_lsn()
        raw = store.wal.read_bytes(0, end)
        frame = {"kind": "repl", "op": "append", "primary": "p",
                 "epoch": 0, "start": 0}
        import base64
        frame["data"] = base64.b64encode(raw).decode("ascii")
        before = applier.applied_records
        for _ in range(3):                        # replay the same bytes
            reply = applier.receive(dict(frame))
            assert reply["op"] == "ack" and reply["lsn"] == end
        assert applier.applied_records == before  # nothing re-applied
        assert applier.end_lsn() == end

    def test_shipper_handles_replica_set_changes(self):
        store = MessageStore(durability="sync")
        wire, shipper, applier = wire_replica(store)
        commit_message(store, b"<a/>")
        from repro.replication import ReplicaApplier
        late = ReplicaApplier("p", "r2")
        wire.add_replica("r2", late)
        shipper.set_replicas(["r", "r2"])
        shipper.ship()                            # catches r2 up from 0
        assert late.end_lsn() == store.wal.end_lsn()
        shipper.set_replicas(["r2"])              # r leaves the set
        commit_message(store, b"<b/>")
        assert late.end_lsn() == store.wal.end_lsn()
        assert "r" not in shipper.status()["sent"]


class TestReplicaAckPolicy:
    def test_acks_without_inline_force(self):
        store = MessageStore(durability="replica-ack")
        wire, shipper, applier = wire_replica(store)
        for index in range(6):
            commit_message(store, f"<m n='{index}'/>".encode())
        stats = store.group_commit.stats
        assert stats.replica_acks == 6
        assert stats.replica_ack_fallbacks == 0
        assert stats.inline_forces == 0
        # the replica holds every acked byte even though the primary's
        # own fsync is deferred to the async flusher
        assert applier.end_lsn() == store.wal.end_lsn()
        store.close()

    def test_falls_back_inline_without_replicas(self):
        store = MessageStore(durability="replica-ack")
        for index in range(3):
            commit_message(store, f"<m n='{index}'/>".encode())
        stats = store.group_commit.stats
        assert stats.replica_ack_fallbacks == 3
        assert stats.inline_forces == 3
        # never weaker than sync: everything acked is already on disk
        assert store.wal.flushed_lsn == store.wal.end_lsn()
        store.close()

    def test_falls_back_inline_when_replica_unresponsive(self):
        store = MessageStore(durability="replica-ack")
        wire, shipper, applier = wire_replica(store)
        store.group_commit.replica_ack_wait = 0.01
        wire.drop_next = 10**6                    # replica goes dark
        commit_message(store, b"<m/>")
        stats = store.group_commit.stats
        assert stats.replica_acks == 0
        assert stats.replica_ack_fallbacks == 1
        assert store.wal.flushed_lsn == store.wal.end_lsn()
        store.close()


class TestFencing:
    def test_stale_shipper_is_fenced_permanently(self):
        store = MessageStore(durability="sync")
        fenced_shards = []
        wire = Wire()
        from repro.replication import ReplicaApplier, WalShipper
        applier = ReplicaApplier("p", "r", epoch=0)
        wire.add_replica("r", applier)
        shipper = WalShipper("p", store.wal, ["r"], wire.send, epoch=0,
                             on_fenced=lambda: fenced_shards.append("p"))
        wire.attach(shipper)
        store.group_commit.shipper = shipper
        commit_message(store, b"<a/>")
        assert not shipper.fenced
        applier.advance_fence(1)                  # a newer epoch exists
        commit_message(store, b"<b/>")
        assert shipper.fenced
        assert fenced_shards == ["p"]
        assert applier.fenced_rejects >= 1
        # commits still succeed locally — fencing stops shipping only
        end_before = applier.end_lsn()
        commit_message(store, b"<c/>")
        assert applier.end_lsn() == end_before
        assert not shipper.await_acked(store.wal.end_lsn(), timeout=0.01)

    def test_promoted_applier_fences_old_stream(self):
        store = MessageStore(durability="sync")
        wire, shipper, applier = wire_replica(store)
        commit_message(store, b"<a/>")
        applier.promote(epoch=1)
        commit_message(store, b"<b/>")            # old primary writes on
        assert shipper.fenced
        assert applier.status()["promoted"] is True

    def test_replica_ack_degrades_to_sync_after_fence(self):
        store = MessageStore(durability="replica-ack")
        wire, shipper, applier = wire_replica(store)
        commit_message(store, b"<a/>")
        applier.advance_fence(2)
        store.group_commit.replica_ack_wait = 0.01
        commit_message(store, b"<b/>")
        stats = store.group_commit.stats
        assert stats.replica_ack_fallbacks >= 1
        assert store.wal.flushed_lsn == store.wal.end_lsn()
        store.close()
