"""Replica promotion: the standby becomes the shard (tier 1).

Promotion rules under test (DESIGN.md §9): the sealed standby holds
exactly the committed transactions of the shipped prefix, torn tails
are truncated rather than replayed, the transaction-id counter advances
past everything the stream used (no id collisions on the promoted
timeline), and the promoted store keeps writing the *same* WAL byte
stream so the new epoch's shipping continues at the old offsets.
"""

from repro.storage import MessageStore

from tests.replication.conftest import commit_message, wire_replica


def queue_bodies(store, queue="q"):
    return sorted(store.body_text(meta.msg_id)
                  for meta in store.queue_messages(queue))


class TestPromotion:
    def test_promoted_store_equals_primary(self):
        store = MessageStore(durability="sync")
        wire, shipper, applier = wire_replica(store)
        for index in range(10):
            commit_message(store, f"<m n='{index}'/>".encode())
        promoted = applier.promote(epoch=1)
        assert queue_bodies(promoted) == queue_bodies(store)
        assert promoted.queue_depth("q") == store.queue_depth("q")
        assert promoted.wal.end_lsn() == store.wal.end_lsn()

    def test_torn_tail_is_truncated_not_replayed(self):
        store = MessageStore(durability="sync")
        wire, shipper, applier = wire_replica(store)
        commit_message(store, b"<whole/>")
        clean_end = store.wal.end_lsn()
        # hand-deliver half of the next transaction's bytes: the crash
        # window where the primary died mid-ship
        shipper.set_replicas([])                 # stop automatic repair
        commit_message(store, b"<torn/>")
        import base64
        raw = store.wal.read_bytes(clean_end, store.wal.end_lsn())
        torn = raw[:len(raw) // 2]
        applier.receive({"kind": "repl", "op": "append", "primary": "p",
                         "epoch": 0, "start": applier.end_lsn(),
                         "data": base64.b64encode(torn).decode("ascii")})
        assert applier.end_lsn() > clean_end     # torn bytes held
        promoted = applier.promote(epoch=1)
        # the physically incomplete frame is gone; complete records of
        # the never-committed transaction may remain (a dangling BEGIN,
        # exactly like a crashed primary's own log) but apply nothing
        assert promoted.wal.end_lsn() < store.wal.end_lsn()
        assert queue_bodies(promoted) == ["<whole/>"]

    def test_promotion_advances_txn_ids(self):
        store = MessageStore(durability="sync")
        wire, shipper, applier = wire_replica(store)
        for _ in range(5):
            commit_message(store, b"<m/>")
        seen = applier._max_txn
        promoted = applier.promote(epoch=1)
        txn = promoted.begin()
        try:
            assert txn.txn_id > seen
        finally:
            promoted.abort(txn)

    def test_promoted_store_continues_the_byte_stream(self):
        store = MessageStore(durability="sync")
        wire, shipper, applier = wire_replica(store)
        for _ in range(4):
            commit_message(store, b"<old/>")
        handover = store.wal.end_lsn()
        promoted = applier.promote(epoch=1)
        commit_message(promoted, b"<new/>")
        # new commits append past the shipped prefix on the SAME log:
        # a second-epoch shipper resumes at the old offsets, so the
        # other replicas' prefixes stay aligned
        assert promoted.wal.end_lsn() > handover
        assert promoted.wal.read_bytes(0, handover) == \
            store.wal.read_bytes(0, handover)
        assert sorted(queue_bodies(promoted)) == \
            ["<new/>"] + ["<old/>"] * 4

    def test_promoted_standby_survives_restart(self, tmp_path):
        """An on-disk standby recovers as a normal store after a crash
        of the *promoted* process: the sealed prefix was forced."""
        primary = MessageStore(str(tmp_path / "primary"),
                               durability="sync")
        wire, shipper, applier = wire_replica(
            primary, standby_dir=str(tmp_path / "standby"))
        for index in range(6):
            commit_message(primary, f"<m n='{index}'/>".encode())
        promoted = applier.promote(epoch=1)
        commit_message(promoted, b"<post/>")
        promoted.simulate_crash()
        reborn = MessageStore(str(tmp_path / "standby"),
                              durability="sync")
        assert queue_bodies(reborn) == queue_bodies(primary) + ["<post/>"]
        reborn.close()
        primary.close()
