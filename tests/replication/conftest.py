"""Shared wiring for the tier-1 replication tests.

Everything here runs in-process with no sockets: the shipper's
``send_fn`` is a :class:`Wire` that hands frames straight to appliers
and routes their replies back — the same frame protocol the socket
cluster ships over TCP, minus the transport.
"""

from repro.replication import ReplicaApplier, WalShipper


def commit_message(store, payload=b"<m/>", queue="q", properties=None):
    """One committed single-insert transaction; returns the msg id."""
    txn = store.begin()
    op = txn.insert_message(queue, payload, dict(properties or {}), [])
    store.commit(txn)
    return op.msg_id


class Wire:
    """Synchronous shipper↔applier loopback with scriptable faults.

    ``drop_next`` makes the next *n* frames vanish *after* the send
    succeeds (the transport-chaos semantics: the sender believes the
    write went out, the receiver never sees it).
    """

    def __init__(self):
        self.appliers: dict[str, ReplicaApplier] = {}
        self.shipper: WalShipper | None = None
        self.drop_next = 0
        self.sent_frames = 0
        self.dropped_frames = 0

    def attach(self, shipper: WalShipper) -> None:
        self.shipper = shipper

    def add_replica(self, name: str, applier: ReplicaApplier) -> None:
        self.appliers[name] = applier

    def send(self, replica: str, frame: dict) -> bool:
        applier = self.appliers.get(replica)
        if applier is None:
            return False
        self.sent_frames += 1
        if self.drop_next > 0:
            self.drop_next -= 1
            self.dropped_frames += 1
            return True                  # the network ate it silently
        reply = applier.receive(frame)
        if reply is not None and self.shipper is not None:
            if reply.get("op") == "fence":
                self.shipper.on_fence(reply)
            else:
                self.shipper.on_ack(reply)
        return True


def wire_replica(store, primary="p", replica="r", epoch=0,
                 standby_dir=None, metrics=None):
    """A primary store wired to one standby applier; returns the trio."""
    wire = Wire()
    applier = ReplicaApplier(primary, replica, epoch=epoch,
                             standby_dir=standby_dir)
    wire.add_replica(replica, applier)
    shipper = WalShipper(primary, store.wal, [replica], wire.send,
                         epoch=epoch, metrics=metrics)
    wire.attach(shipper)
    store.group_commit.shipper = shipper
    return wire, shipper, applier
