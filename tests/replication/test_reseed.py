"""Replica re-seed after the primary truncates past the ack horizon.

WAL shipping is a byte-suffix copy, so a replica whose position falls
below the truncated log's base can never catch up by bytes alone.  The
shipper detects the condition (``sent < wal.start_lsn()``) and ships
full checkpoint state instead; the stream resumes at the capture LSN
(DESIGN.md §10).  The hypothesis property at the bottom drives the
whole lifecycle — lag, force-truncate, re-seed, resume — and asserts
zero acked-commit loss at every shape.
"""

import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.replication import ReplicaApplier, WalShipper
from repro.storage import MessageStore

from tests.replication.conftest import Wire, commit_message


def wire_reseedable(store, primary="p", replica="r"):
    """A replica wired to *store* with the re-seed path enabled."""
    wire = Wire()
    applier = ReplicaApplier(primary, replica)
    wire.add_replica(replica, applier)
    shipper = WalShipper(primary, store.wal, [replica], wire.send,
                         reseed_fn=store.export_reseed_state)
    wire.attach(shipper)
    store.group_commit.shipper = shipper
    return wire, shipper, applier


def lag_truncate_reseed(store, wire, shipper, lag_commits):
    """Drop *lag_commits* shipped frames, then force-truncate past them."""
    wire.drop_next = 10_000
    for i in range(lag_commits):
        commit_message(store, f"<lag n='{i}'/>".encode())
    wire.drop_next = 0
    assert store.checkpoint() == "completed"
    dropped = store.truncate_wal(force=True)
    assert dropped > 0
    # The replica's stale ack (via a probe) rewinds the shipper's sent
    # mark below the new log base; the next ship must re-seed.
    shipper.hello()
    shipper.ship()
    return dropped


def assert_converged(store, applier):
    assert applier.wal.end_lsn() == store.wal.end_lsn()
    assert applier.store.queue_depth("q") == store.queue_depth("q")
    for meta in store.queue_messages("q"):
        assert applier.store.body_bytes(meta.msg_id) == \
            store.body_bytes(meta.msg_id)


def test_truncation_past_replica_triggers_reseed(tmp_path):
    store = MessageStore(str(tmp_path / "p"))
    wire, shipper, applier = wire_reseedable(store)
    acked = [commit_message(store, f"<pre n='{i}'/>".encode())
             for i in range(3)]
    lag_truncate_reseed(store, wire, shipper, lag_commits=4)
    assert shipper.reseeds == 1
    assert_converged(store, applier)
    # Every commit the replica ever acknowledged is still there.
    for msg_id in acked:
        assert applier.store.body_bytes(msg_id) == \
            store.body_bytes(msg_id)
    # Byte shipping resumes normally after the re-seed.
    after = commit_message(store, b"<after/>")
    assert shipper.reseeds == 1
    assert applier.store.body_bytes(after) == b"<after/>"
    assert shipper.min_acked() == store.wal.end_lsn()
    store.close()


def test_promoted_reseeded_standby_serves_everything(tmp_path):
    store = MessageStore(str(tmp_path / "p"))
    wire, shipper, applier = wire_reseedable(store)
    ids = [commit_message(store, f"<m n='{i}'/>".encode())
           for i in range(2)]
    lag_truncate_reseed(store, wire, shipper, lag_commits=3)
    ids.append(commit_message(store, b"<tail/>"))
    promoted = applier.promote(epoch=1)
    assert promoted.message_count() == store.message_count()
    for msg_id in ids:
        assert promoted.body_bytes(msg_id) == store.body_bytes(msg_id)
    store.close()


def test_stale_reseed_frame_is_a_pure_duplicate(tmp_path):
    store = MessageStore(str(tmp_path / "p"))
    wire, shipper, applier = wire_reseedable(store)
    for i in range(3):
        commit_message(store, f"<m n='{i}'/>".encode())
    end = applier.wal.end_lsn()
    start, state = store.export_reseed_state()
    # A capture at or below the standby's end carries nothing new.
    reply = applier.receive({"kind": "repl", "op": "reseed",
                             "primary": "p", "epoch": 0,
                             "start": min(start, end), "state": state})
    assert reply["op"] == "ack" and reply["lsn"] == end
    assert applier.store.queue_depth("q") == store.queue_depth("q")
    store.close()


def test_reseed_unavailable_leaves_the_replica_parked(tmp_path):
    store = MessageStore(str(tmp_path / "p"))
    wire = Wire()
    applier = ReplicaApplier("p", "r")
    wire.add_replica("r", applier)
    shipper = WalShipper("p", store.wal, ["r"], wire.send)   # no reseed_fn
    wire.attach(shipper)
    store.group_commit.shipper = shipper
    commit_message(store, b"<pre/>")
    behind = applier.wal.end_lsn()
    wire.drop_next = 10_000
    commit_message(store, b"<lost/>")
    wire.drop_next = 0
    store.checkpoint()
    store.truncate_wal(force=True)
    shipper.hello()
    shipper.ship()
    # Without a re-seed source the replica cannot advance — but nothing
    # crashes and its held prefix stays intact.
    assert shipper.reseeds == 0
    assert applier.wal.end_lsn() == behind
    store.close()


@settings(max_examples=15, deadline=None)
@given(pre=st.integers(min_value=0, max_value=3),
       lag=st.integers(min_value=1, max_value=5),
       post=st.integers(min_value=0, max_value=3))
def test_reseed_loses_no_acked_commit(pre, lag, post):
    """Any mix of acked / lagged / resumed commits converges losslessly."""
    with tempfile.TemporaryDirectory(prefix="demaq-reseed-") as directory:
        store = MessageStore(directory)
        wire, shipper, applier = wire_reseedable(store)
        acked = [commit_message(store, f"<pre n='{i}'/>".encode())
                 for i in range(pre)]
        lag_truncate_reseed(store, wire, shipper, lag_commits=lag)
        for i in range(post):
            commit_message(store, f"<post n='{i}'/>".encode())
        assert shipper.reseeds == 1
        assert_converged(store, applier)
        for msg_id in acked:
            assert applier.store.body_bytes(msg_id) == \
                store.body_bytes(msg_id)
        store.close()
