"""Tests for rule compilation: rewrites and prefilters (§4.4.1)."""

from repro.engine.compiler import compile_rules, element_names
from repro.qdl import parse_qdl
from repro.xmldm import parse
from repro.xquery import ast

APP = parse_qdl("""
    create queue crm kind basic mode persistent;
    create queue out kind basic mode persistent;
    create property orderID as xs:string fixed
        queue crm value //orderID;
    create slicing orders on orderID;
    create rule r1 for crm
        if (//offerRequest) then do enqueue <a/> into out;
    create rule r2 for crm
        if (qs:property("orderID") = "x" and qs:queue()) then
            do enqueue <b/> into out;
    create rule r3 for orders
        if (qs:slice()) then do reset
""")


def find_calls(expr, name):
    return [n for n in ast.walk(expr)
            if isinstance(n, ast.FunctionCall) and n.name == name]


def test_queue_rules_in_plan():
    compiled = compile_rules(APP)
    plan = compiled.plan_for("crm")
    assert [r.name for r in plan.rules] == ["r1", "r2"]
    assert [r.name for r in plan.slice_rules] == ["r3"]
    assert compiled.plan_for("out").rules == []


def test_slice_rule_attached_to_covered_queues_only():
    compiled = compile_rules(APP)
    assert compiled.plan_for("out").slice_rules == []


def test_default_queue_argument_supplied():
    compiled = compile_rules(APP)
    r2 = compiled.plan_for("crm").rules[1]
    calls = find_calls(r2.body, "qs:queue")
    assert len(calls) == 1
    assert isinstance(calls[0].args[0], ast.Literal)
    assert calls[0].args[0].value == "crm"


def test_fixed_property_inlined():
    compiled = compile_rules(APP)
    r2 = compiled.plan_for("crm").rules[1]
    assert find_calls(r2.body, "qs:property") == []
    # replaced by xs:string(<value expr>) preserving the declared type
    casts = find_calls(r2.body, "xs:string")
    assert len(casts) == 1


def test_original_rule_ast_untouched():
    compile_rules(APP)
    source_rule = APP.rules[1]
    assert find_calls(source_rule.body, "qs:property")


def test_unoptimized_plan_keeps_everything():
    compiled = compile_rules(APP, optimize=False)
    r2 = compiled.plan_for("crm").rules[1]
    assert find_calls(r2.body, "qs:property")
    assert not find_calls(r2.body, "qs:queue")[0].args
    assert r2.required_elements is None


def test_prefilter_extracted_from_condition():
    compiled = compile_rules(APP)
    r1 = compiled.plan_for("crm").rules[0]
    assert r1.required_elements == frozenset({"offerRequest"})


def test_prefilter_none_for_unanalyzable():
    compiled = compile_rules(APP)
    r3 = compiled.plan_for("crm").slice_rules[0]
    assert r3.required_elements is None     # qs:slice() tells us nothing


def test_prefilter_conjunction_uses_any_conjunct():
    app = parse_qdl("""
        create queue q kind basic mode persistent;
        create rule r for q
            if (//a and qs:queue("q")) then do enqueue <x/> into q
    """)
    compiled = compile_rules(app)
    rule = compiled.plan_for("q").rules[0]
    assert rule.required_elements == frozenset({"a"})


def test_prefilter_disjunction_unions():
    app = parse_qdl("""
        create queue q kind basic mode persistent;
        create rule r for q
            if (//a or //b) then do enqueue <x/> into q
    """)
    rule = compile_rules(app).plan_for("q").rules[0]
    assert rule.required_elements == frozenset({"a", "b"})


def test_prefilter_disjunction_with_opaque_side_is_none():
    app = parse_qdl("""
        create queue q kind basic mode persistent;
        create rule r for q
            if (//a or qs:queue("q")) then do enqueue <x/> into q
    """)
    assert compile_rules(app).plan_for("q").rules[0].required_elements is None


def test_prefilter_from_comparison():
    app = parse_qdl("""
        create queue q kind basic mode persistent;
        create rule r for q
            if (//customerID = 23) then do enqueue <x/> into q
    """)
    rule = compile_rules(app).plan_for("q").rules[0]
    assert rule.required_elements == frozenset({"customerID"})


def test_rule_with_else_branch_never_prefiltered():
    app = parse_qdl("""
        create queue q kind basic mode persistent;
        create rule r for q
            if (//a) then do enqueue <x/> into q
            else do enqueue <y/> into q
    """)
    assert compile_rules(app).plan_for("q").rules[0].required_elements is None


def test_element_names_one_pass():
    doc = parse("<a><b><c/></b><d x='1'/></a>")
    assert element_names(doc) == frozenset({"a", "b", "c", "d"})


# -- index predicate pushdown -------------------------------------------------

IDX_APP_SOURCE = """
    create queue orders kind basic mode persistent;
    create queue lookups kind basic mode persistent;
    create queue out kind basic mode persistent;
    create property customer as xs:string fixed
        queue orders value //customerID;
    create property probeFor as xs:string
        queue lookups value string(//probe/@c);
    create index on queue orders property customer;
    create rule postfix for lookups
        if (//probe) then
            do enqueue
                <n>{count(qs:queue("orders")
                          [//customerID = qs:property("probeFor")])}</n>
            into out;
    create rule flwor for lookups
        if (//probe) then
            for $m in qs:queue("orders")
            where $m//customerID = qs:property("probeFor")
                and $m//amount > 5
            return do enqueue <hit>{string($m//amount)}</hit> into out
"""


def _compiled_idx_rules():
    app = parse_qdl(IDX_APP_SOURCE)
    plan = compile_rules(app).plan_for("lookups")
    return {rule.name: rule for rule in plan.rules}


def test_postfix_predicate_pushed_down():
    rule = _compiled_idx_rules()["postfix"]
    assert rule.index_lookups == [("orders", "customer")]
    calls = find_calls(rule.body, "qs:queue-index")
    assert len(calls) == 1
    assert calls[0].args[0].value == "orders"
    assert calls[0].args[1].value == "customer"
    assert find_calls(rule.body, "qs:queue") == []


def test_flwor_conjunct_pushed_down_and_residual_kept():
    rule = _compiled_idx_rules()["flwor"]
    assert rule.index_lookups == [("orders", "customer")]
    assert len(find_calls(rule.body, "qs:queue-index")) == 1
    # the non-indexable conjunct survives as the where clause
    flwor = next(n for n in ast.walk(rule.body)
                 if isinstance(n, ast.FLWORExpr))
    assert isinstance(flwor.where, ast.Comparison)
    assert flwor.where.op == ">"


def test_no_pushdown_without_declared_index():
    source = IDX_APP_SOURCE.replace(
        "create index on queue orders property customer;", "")
    plan = compile_rules(parse_qdl(source)).plan_for("lookups")
    for rule in plan.rules:
        assert rule.index_lookups == []
        assert find_calls(rule.body, "qs:queue-index") == []


def test_no_pushdown_when_unoptimized():
    plan = compile_rules(parse_qdl(IDX_APP_SOURCE),
                         optimize=False).plan_for("lookups")
    for rule in plan.rules:
        assert find_calls(rule.body, "qs:queue-index") == []


def test_no_pushdown_for_focus_dependent_probe():
    # string(//probe/@c) re-focuses on each *scanned* message inside a
    # predicate, so it is not a hoistable probe
    app = parse_qdl("""
        create queue orders kind basic mode persistent;
        create queue lookups kind basic mode persistent;
        create queue out kind basic mode persistent;
        create property customer as xs:string fixed
        queue orders value //customerID;
        create index on queue orders property customer;
        create rule r for lookups
            if (count(qs:queue("orders")
                      [//customerID = string(//probe/@c)]) > 0)
            then do enqueue <x/> into out
    """)
    rule = compile_rules(app).plan_for("lookups").rules[0]
    assert rule.index_lookups == []


def test_no_pushdown_for_mismatched_path():
    app = parse_qdl("""
        create queue orders kind basic mode persistent;
        create queue lookups kind basic mode persistent;
        create queue out kind basic mode persistent;
        create property customer as xs:string fixed
        queue orders value //customerID;
        create index on queue orders property customer;
        create rule r for lookups
            if (count(qs:queue("orders")[//otherField = "x"]) > 0)
            then do enqueue <x/> into out
    """)
    assert compile_rules(app).plan_for("lookups").rules[0].index_lookups == []


def test_no_flwor_pushdown_when_probe_uses_flwor_variable():
    app = parse_qdl("""
        create queue orders kind basic mode persistent;
        create queue refs kind basic mode persistent;
        create queue out kind basic mode persistent;
        create property customer as xs:string fixed
        queue orders value //customerID;
        create index on queue orders property customer;
        create rule r for refs
            for $r in qs:queue("refs"), $m in qs:queue("orders")
            where $m//customerID = $r//wanted
            return do enqueue <x/> into out
    """)
    assert compile_rules(app).plan_for("refs").rules[0].index_lookups == []


def test_no_flwor_pushdown_for_shadowed_variable():
    """`for $m in qs:queue("orders"), $m in qs:queue("other")`: the
    where clause's $m is the *later* binding, so the first clause must
    not absorb the conjunct."""
    from repro import DemaqServer
    source = """
        create queue orders kind basic mode persistent;
        create queue other kind basic mode persistent;
        create queue lookups kind basic mode persistent;
        create queue out kind basic mode persistent;
        create property customer as xs:string fixed
            queue orders value //customerID;
        create property probeFor as xs:string
            queue lookups value string(//probe/@c);
        create index on queue orders property customer;
        create rule r for lookups
            for $m in qs:queue("orders"), $m in qs:queue("other")
            where $m//customerID = qs:property("probeFor")
            return do enqueue <hit>{string($m//tag)}</hit> into out
    """
    rule = compile_rules(parse_qdl(source)).plan_for("lookups").rules[0]
    assert rule.index_lookups == []
    for variant in (source, source.replace(
            "create index on queue orders property customer;", "")):
        server = DemaqServer(variant)
        server.enqueue("orders", "<o><customerID>alice</customerID></o>")
        server.enqueue("orders", "<o><customerID>bob</customerID></o>")
        server.enqueue(
            "other", "<o><customerID>alice</customerID><tag>A</tag></o>")
        server.enqueue(
            "other", "<o><customerID>carol</customerID><tag>C</tag></o>")
        server.run_until_idle()
        server.enqueue("lookups", '<probe c="alice"/>')
        server.run_until_idle()
        # $m in the where is the "other" binding: one match per orders row
        assert sorted(server.queue_texts("out")) == [
            "<hit>A</hit>", "<hit>A</hit>"]


def test_no_flwor_pushdown_with_positional_variable():
    app = parse_qdl("""
        create queue orders kind basic mode persistent;
        create queue lookups kind basic mode persistent;
        create queue out kind basic mode persistent;
        create property customer as xs:string fixed
        queue orders value //customerID;
        create property probeFor as xs:string
            queue lookups value string(//probe/@c);
        create index on queue orders property customer;
        create rule r for lookups
            for $m at $i in qs:queue("orders")
            where $m//customerID = qs:property("probeFor")
            return do enqueue <x>{$i}</x> into out
    """)
    assert compile_rules(app).plan_for("lookups").rules[0].index_lookups == []


def test_pushdown_end_to_end_matches_scan_plan():
    from repro import DemaqServer
    indexed = DemaqServer(IDX_APP_SOURCE)
    scan = DemaqServer(IDX_APP_SOURCE.replace(
        "create index on queue orders property customer;", ""))
    for server in (indexed, scan):
        for index in range(24):
            server.enqueue(
                "orders",
                f"<order><customerID>c{index % 4}</customerID>"
                f"<amount>{index}</amount></order>")
        server.run_until_idle()
        server.enqueue("lookups", '<probe c="c2"/>')
        server.run_until_idle()
    assert sorted(indexed.queue_texts("out")) == sorted(scan.queue_texts("out"))
    assert indexed.queue_texts("out")          # non-trivial result


def test_no_pushdown_for_non_fixed_property():
    """A non-fixed property can be set explicitly (or inherited), so
    its stored value may diverge from the body path the predicate
    tests — both plans must keep scanning and agree."""
    from repro import DemaqServer
    source = IDX_APP_SOURCE.replace(
        "create property customer as xs:string fixed",
        "create property customer as xs:string")
    plan = compile_rules(parse_qdl(source)).plan_for("lookups")
    for rule in plan.rules:
        assert rule.index_lookups == []
    for variant in (source, source.replace(
            "create index on queue orders property customer;", "")):
        server = DemaqServer(variant)
        server.enqueue("orders",
                       "<order><customerID>alice</customerID></order>")
        server.enqueue("orders",
                       "<order><customerID>alice</customerID></order>",
                       properties={"customer": "bob"})   # overrides
        server.run_until_idle()
        server.enqueue("lookups", '<probe c="alice"/>')
        server.run_until_idle()
        # the body path matches both messages regardless of the override
        assert server.queue_texts("out") == ["<n>2</n>"]


def test_double_property_probe_matches_scan_plan():
    """xs:double properties compare at double precision in the scan
    plan, so the index must accept probes the double cast rounds."""
    from repro import DemaqServer
    big = 2**60 + 1          # rounds to 2.0**60 as a double
    source = f"""
        create queue q kind basic mode persistent;
        create queue trigger kind basic mode persistent;
        create queue out kind basic mode persistent;
        create property amt as xs:double fixed queue q value //amt;
        create index on queue q property amt;
        create rule r for trigger
            if (//go) then
                do enqueue <n>{{count(qs:queue("q")[//amt = {big}])}}</n>
                into out
    """
    for variant in (source, source.replace(
            "create index on queue q property amt;", "")):
        server = DemaqServer(variant)
        server.enqueue("q", f"<m><amt>{big}</amt></m>")
        server.enqueue("trigger", "<go/>")
        server.run_until_idle()
        assert server.queue_texts("out") == ["<n>1</n>"]


def test_no_pushdown_across_type_classes():
    """A string probe against a numeric property compares lexically in
    the scan plan ("07" != "7"), which no typed index can answer — the
    compiler must keep the scan.  Same for value comparisons (`eq`) on
    non-string properties, where the scan raises a type error."""
    from repro import DemaqServer
    source = """
        create queue q kind basic mode persistent;
        create queue trigger kind basic mode persistent;
        create queue out kind basic mode persistent;
        create property pid as xs:integer fixed queue q value //id;
        create index on queue q property pid;
        create rule r for trigger
            if (//go) then
                do enqueue <n>{count(qs:queue("q")[//id = "7"])}</n>
                into out
    """
    app = parse_qdl(source)
    assert compile_rules(app).plan_for("trigger").rules[0].index_lookups == []
    for variant in (source, source.replace(
            "create index on queue q property pid;", "")):
        server = DemaqServer(variant)
        server.enqueue("q", "<m><id>07</id></m>")
        server.enqueue("trigger", "<go/>")
        server.run_until_idle()
        assert server.queue_texts("out") == ["<n>0</n>"]
    # eq on a numeric property: scan semantics raise, so no pushdown
    eq_app = parse_qdl(source.replace('//id = "7"', "//id eq 7"))
    assert compile_rules(eq_app).plan_for(
        "trigger").rules[0].index_lookups == []


def test_matching_type_class_still_pushes_down():
    app = parse_qdl("""
        create queue q kind basic mode persistent;
        create queue trigger kind basic mode persistent;
        create queue out kind basic mode persistent;
        create property pid as xs:integer fixed queue q value //id;
        create index on queue q property pid;
        create rule r for trigger
            if (//go) then
                do enqueue <n>{count(qs:queue("q")[//id = 7])}</n>
                into out
    """)
    rule = compile_rules(app).plan_for("trigger").rules[0]
    assert rule.index_lookups == [("q", "pid")]


def test_lossy_numeric_probe_matches_scan_plan():
    """1.5 against an xs:integer index must not match stored 1 the way
    a truncating cast would — both plans must agree the rule misses."""
    from repro import DemaqServer
    source = """
        create queue q kind basic mode persistent;
        create queue trigger kind basic mode persistent;
        create queue out kind basic mode persistent;
        create property val as xs:integer fixed queue q value //val;
        create index on queue q property val;
        create rule r for trigger
            if (//go) then
                do enqueue <n>{count(qs:queue("q")[//val = 1.5])}</n>
                into out
    """
    for app in (source, source.replace(
            "create index on queue q property val;", "")):
        server = DemaqServer(app)
        server.enqueue("q", "<m><val>1</val></m>")
        server.enqueue("trigger", "<go/>")
        server.run_until_idle()
        assert server.queue_texts("out") == ["<n>0</n>"]


def test_handwritten_queue_index_on_unindexed_pair_routes_to_error_queue():
    """qs:queue-index() on a missing index is a dynamic error (§3.6),
    not a storage fault that kills the processing loop."""
    from repro import DemaqServer
    server = DemaqServer("""
        create queue q kind basic mode persistent;
        create queue failures kind basic mode persistent;
        create errorqueue failures;
        create rule r for q
            if (count(qs:queue-index("q", "nosuch", 1)) = 0) then
                do enqueue <x/> into q
    """)
    server.enqueue("q", "<m/>")
    server.run_until_idle()          # must not raise
    errors = server.queue_texts("failures")
    assert len(errors) == 1
    assert "no index" in errors[0]


def test_prefilter_behaviour_end_to_end():
    from repro import DemaqServer
    server = DemaqServer("""
        create queue q kind basic mode persistent;
        create queue out kind basic mode persistent;
        create rule only_offers for q
            if (//offerRequest) then do enqueue <hit/> into out
    """)
    server.enqueue("q", "<other/>")
    server.enqueue("q", "<offerRequest/>")
    server.run_until_idle()
    assert server.queue_texts("out") == ["<hit/>"]
    assert server.executor.stats.rules_skipped_by_prefilter == 1
    assert server.executor.stats.rules_evaluated == 1
