"""Tests for rule compilation: rewrites and prefilters (§4.4.1)."""

from repro.engine.compiler import compile_rules, element_names
from repro.qdl import parse_qdl
from repro.xmldm import parse
from repro.xquery import ast

APP = parse_qdl("""
    create queue crm kind basic mode persistent;
    create queue out kind basic mode persistent;
    create property orderID as xs:string fixed
        queue crm value //orderID;
    create slicing orders on orderID;
    create rule r1 for crm
        if (//offerRequest) then do enqueue <a/> into out;
    create rule r2 for crm
        if (qs:property("orderID") = "x" and qs:queue()) then
            do enqueue <b/> into out;
    create rule r3 for orders
        if (qs:slice()) then do reset
""")


def find_calls(expr, name):
    return [n for n in ast.walk(expr)
            if isinstance(n, ast.FunctionCall) and n.name == name]


def test_queue_rules_in_plan():
    compiled = compile_rules(APP)
    plan = compiled.plan_for("crm")
    assert [r.name for r in plan.rules] == ["r1", "r2"]
    assert [r.name for r in plan.slice_rules] == ["r3"]
    assert compiled.plan_for("out").rules == []


def test_slice_rule_attached_to_covered_queues_only():
    compiled = compile_rules(APP)
    assert compiled.plan_for("out").slice_rules == []


def test_default_queue_argument_supplied():
    compiled = compile_rules(APP)
    r2 = compiled.plan_for("crm").rules[1]
    calls = find_calls(r2.body, "qs:queue")
    assert len(calls) == 1
    assert isinstance(calls[0].args[0], ast.Literal)
    assert calls[0].args[0].value == "crm"


def test_fixed_property_inlined():
    compiled = compile_rules(APP)
    r2 = compiled.plan_for("crm").rules[1]
    assert find_calls(r2.body, "qs:property") == []
    # replaced by xs:string(<value expr>) preserving the declared type
    casts = find_calls(r2.body, "xs:string")
    assert len(casts) == 1


def test_original_rule_ast_untouched():
    compile_rules(APP)
    source_rule = APP.rules[1]
    assert find_calls(source_rule.body, "qs:property")


def test_unoptimized_plan_keeps_everything():
    compiled = compile_rules(APP, optimize=False)
    r2 = compiled.plan_for("crm").rules[1]
    assert find_calls(r2.body, "qs:property")
    assert not find_calls(r2.body, "qs:queue")[0].args
    assert r2.required_elements is None


def test_prefilter_extracted_from_condition():
    compiled = compile_rules(APP)
    r1 = compiled.plan_for("crm").rules[0]
    assert r1.required_elements == frozenset({"offerRequest"})


def test_prefilter_none_for_unanalyzable():
    compiled = compile_rules(APP)
    r3 = compiled.plan_for("crm").slice_rules[0]
    assert r3.required_elements is None     # qs:slice() tells us nothing


def test_prefilter_conjunction_uses_any_conjunct():
    app = parse_qdl("""
        create queue q kind basic mode persistent;
        create rule r for q
            if (//a and qs:queue("q")) then do enqueue <x/> into q
    """)
    compiled = compile_rules(app)
    rule = compiled.plan_for("q").rules[0]
    assert rule.required_elements == frozenset({"a"})


def test_prefilter_disjunction_unions():
    app = parse_qdl("""
        create queue q kind basic mode persistent;
        create rule r for q
            if (//a or //b) then do enqueue <x/> into q
    """)
    rule = compile_rules(app).plan_for("q").rules[0]
    assert rule.required_elements == frozenset({"a", "b"})


def test_prefilter_disjunction_with_opaque_side_is_none():
    app = parse_qdl("""
        create queue q kind basic mode persistent;
        create rule r for q
            if (//a or qs:queue("q")) then do enqueue <x/> into q
    """)
    assert compile_rules(app).plan_for("q").rules[0].required_elements is None


def test_prefilter_from_comparison():
    app = parse_qdl("""
        create queue q kind basic mode persistent;
        create rule r for q
            if (//customerID = 23) then do enqueue <x/> into q
    """)
    rule = compile_rules(app).plan_for("q").rules[0]
    assert rule.required_elements == frozenset({"customerID"})


def test_rule_with_else_branch_never_prefiltered():
    app = parse_qdl("""
        create queue q kind basic mode persistent;
        create rule r for q
            if (//a) then do enqueue <x/> into q
            else do enqueue <y/> into q
    """)
    assert compile_rules(app).plan_for("q").rules[0].required_elements is None


def test_element_names_one_pass():
    doc = parse("<a><b><c/></b><d x='1'/></a>")
    assert element_names(doc) == frozenset({"a", "b", "c", "d"})


def test_prefilter_behaviour_end_to_end():
    from repro import DemaqServer
    server = DemaqServer("""
        create queue q kind basic mode persistent;
        create queue out kind basic mode persistent;
        create rule only_offers for q
            if (//offerRequest) then do enqueue <hit/> into out
    """)
    server.enqueue("q", "<other/>")
    server.enqueue("q", "<offerRequest/>")
    server.run_until_idle()
    assert server.queue_texts("out") == ["<hit/>"]
    assert server.executor.stats.rules_skipped_by_prefilter == 1
    assert server.executor.stats.rules_evaluated == 1
