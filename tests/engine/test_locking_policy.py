"""Tests for the locking policies and concurrent message processing."""

import threading

import pytest

from repro import DemaqServer
from repro.engine.locking import LockingPolicy
from repro.storage import IS, IX, LockManager, LockTimeoutError, S, X


def test_granularity_validation():
    with pytest.raises(ValueError):
        LockingPolicy(LockManager(), "page")


def test_slice_mode_uses_intention_locks():
    locks = LockManager()
    policy = LockingPolicy(locks, "slice")
    policy.lock_queue_write(1, "crm")
    policy.lock_slice_write(1, "orders", "k1")
    assert locks.mode_of(1, ("queue", "crm")) == IX
    assert locks.mode_of(1, ("slicing", "orders")) == IX
    assert locks.mode_of(1, ("slice", "orders", "k1")) == X


def test_queue_mode_locks_whole_resources():
    locks = LockManager()
    policy = LockingPolicy(locks, "queue")
    policy.lock_queue_write(1, "crm")
    policy.lock_slice_write(1, "orders", "k1")
    assert locks.mode_of(1, ("queue", "crm")) == X
    assert locks.mode_of(1, ("slicing", "orders")) == X
    assert locks.mode_of(1, ("slice", "orders", "k1")) is None


def test_slice_mode_readers_of_disjoint_slices_dont_block():
    locks = LockManager(default_timeout=0.2)
    policy = LockingPolicy(locks, "slice")
    policy.lock_slice_read(1, "orders", "k1")
    policy.lock_slice_write(2, "orders", "k2")   # different slice: fine
    assert locks.mode_of(2, ("slice", "orders", "k2")) == X


def test_queue_mode_serializes_slice_access():
    locks = LockManager(default_timeout=0.05)
    policy = LockingPolicy(locks, "queue")
    policy.lock_slice_read(1, "orders", "k1")
    with pytest.raises(LockTimeoutError):
        policy.lock_slice_write(2, "orders", "k2")


def test_same_slice_write_conflicts_in_slice_mode():
    locks = LockManager(default_timeout=0.05)
    policy = LockingPolicy(locks, "slice")
    policy.lock_slice_write(1, "orders", "k1")
    with pytest.raises(LockTimeoutError):
        policy.lock_slice_write(2, "orders", "k1")


def test_release_frees_everything():
    locks = LockManager()
    policy = LockingPolicy(locks, "slice")
    policy.lock_queue_read(1, "a")
    policy.lock_slice_write(1, "s", "k")
    policy.release(1)
    assert locks.held(1) == set()


CONCURRENT_APP = """
create queue jobs kind basic mode persistent;
create queue done kind basic mode persistent;
create property bucket as xs:string fixed
    queue jobs value //bucket;
create slicing byBucket on bucket;
create rule work for byBucket
    if (qs:message()//job) then
        do enqueue <ack n="{count(qs:slice())}"/> into done
"""


@pytest.mark.parametrize("granularity", ["slice", "queue"])
def test_concurrent_processing_is_complete_and_exactly_once(granularity):
    server = DemaqServer(CONCURRENT_APP, lock_granularity=granularity,
                         lock_timeout=30.0)
    total = 60
    for index in range(total):
        server.enqueue(
            "jobs", f"<job><bucket>b{index % 6}</bucket></job>")

    def worker():
        while True:
            msg_id = server.scheduler.next_message()
            if msg_id is None:
                return
            if not server.executor.process_message(msg_id):
                meta = server.store.get(msg_id)
                if meta is not None:
                    server.scheduler.requeue(msg_id, meta.queue, meta.seqno)

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    server.run_until_idle()   # drain anything requeued late
    acks = server.queue_texts("done")
    assert len(acks) == total                       # every job acked once
    jobs = server.store.queue_messages("jobs")
    assert all(meta.processed for meta in jobs)     # exactly once
    assert server.unhandled_errors == []
