"""Batched message execution (§3.1 batching over the group-commit
pipeline).

The deep contract: running N scheduler picks inside one chained
transaction — each member publishing at its boundary — produces exactly
the store state that one-message-per-transaction execution produces:
same messages, same slices and lifetimes, same properties, same error
queue, same escalations.  The hypothesis differential at the bottom
asserts it over random workloads including rule errors, slice joins
(visibility-sensitive counting), resets, and garbage collection.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DemaqServer
from repro.qdl import compile_application
from repro.storage import wal as walmod
from repro.storage.errors import DeadlockError
from repro.workloads import procurement_application, request_stream


# -- scheduler batch picking ---------------------------------------------------

def _scheduler(app_source="create queue lo kind basic mode transient;"
                          "create queue hi kind basic mode transient"
                          " priority 9;"):
    from repro.engine.scheduler import Scheduler
    return Scheduler(compile_application(app_source))


def test_next_batch_orders_by_priority_then_arrival():
    scheduler = _scheduler()
    scheduler.notify(1, "lo", 1)
    scheduler.notify(2, "lo", 2)
    scheduler.notify(3, "hi", 3)
    scheduler.notify(4, "hi", 4)
    assert scheduler.next_batch(3) == [3, 4, 1]
    assert scheduler.next_batch(3) == [2]
    assert scheduler.next_batch(3) == []
    assert scheduler.dispatched == 4


def test_next_batch_includes_requeued_messages():
    scheduler = _scheduler()
    scheduler.notify(1, "lo", 1)
    scheduler.notify(2, "lo", 2)
    assert scheduler.next_batch(8) == [1, 2]
    scheduler.requeue(1, "lo", 1)
    assert scheduler.next_batch(8) == [1]
    assert scheduler.requeues == 1


# -- end-to-end batched execution ----------------------------------------------

def _drive(server, requests=12):
    for _, _, body in request_stream(requests):
        server.enqueue("crm", body)
    server.run_until_idle()
    return server


def _state(server):
    out = {}
    for queue in server.app.queues:
        out[queue] = [
            (m.meta.msg_id, m.meta.seqno, m.body_text(), m.meta.processed,
             sorted((k, str(v)) for k, v in m.properties.items()),
             sorted(m.meta.slices))
            for m in server.live_messages(queue)]
    out["#lifetimes"] = dict(server.store._lifetimes)
    out["#unhandled"] = [str(d) for d in server.unhandled_errors]
    return out


def test_batched_procurement_matches_serial_execution():
    solo = _drive(DemaqServer(procurement_application()))
    batched = _drive(DemaqServer(procurement_application(), batch_size=8))
    assert batched.executor.stats.batches_committed > 0
    assert _state(solo) == _state(batched)
    assert solo.executor.stats.messages_processed \
        == batched.executor.stats.messages_processed
    solo.collect_garbage()
    batched.collect_garbage()
    assert _state(solo) == _state(batched)


def test_batch_size_from_environment(monkeypatch):
    monkeypatch.setenv("DEMAQ_BATCH_SIZE", "5")
    server = DemaqServer(procurement_application())
    assert server.batch_size == 5
    monkeypatch.delenv("DEMAQ_BATCH_SIZE")
    assert DemaqServer(procurement_application()).batch_size == 1


def test_deadlocked_member_rolls_back_alone_and_is_retried(tmp_path,
                                                           monkeypatch):
    server = DemaqServer("create queue q kind basic mode persistent;",
                         data_dir=str(tmp_path / "d"),
                         durability="group", batch_size=3)
    ids = [server.enqueue("q", f"<m>{n}</m>") for n in range(3)]
    victim = ids[1]

    real = server.executor._process_into_txn
    tripped = []

    def flaky(txn, meta, message):
        result = real(txn, meta, message)
        if meta.msg_id == victim and not tripped:
            tripped.append(meta.msg_id)   # buffered work, then "deadlock"
            raise DeadlockError("simulated victim")
        return result

    monkeypatch.setattr(server.executor, "_process_into_txn", flaky)
    server.run_until_idle()

    assert tripped == [victim]
    assert server.executor.stats.deadlock_retries == 1
    assert server.executor.stats.batch_members_rolled_back == 1
    assert server.scheduler.requeues == 1
    assert all(server.store.get(i).processed for i in ids)

    # the aborted member's span is in the log, bracketed and skipped
    types = [r.type for r in server.store.wal.records()]
    assert walmod.SAVEPOINT in types and walmod.ROLLBACK_SP in types
    server.store.simulate_crash()
    server.store.recover()
    assert all(server.store.get(i).processed for i in ids)
    server.close()


def test_fatal_member_requeues_unreached_batch_mates(monkeypatch):
    """An engine bug in one member must not strand the batch-mates that
    next_batch already popped: the completed prefix commits, the rest
    (including the failing member) goes back to the scheduler."""
    server = DemaqServer("create queue q kind basic mode persistent;",
                         batch_size=3)
    ids = [server.enqueue("q", f"<m>{n}</m>") for n in range(3)]
    victim = ids[1]

    real = server.executor._process_into_txn

    def fatal_once(txn, meta, message):
        if meta.msg_id == victim and not server.store.get(victim).processed:
            raise RuntimeError("engine bug")
        return real(txn, meta, message)

    monkeypatch.setattr(server.executor, "_process_into_txn", fatal_once)
    try:
        server.run_until_idle()
    except RuntimeError:
        pass
    # the first member committed; victim and its successor are back in
    # the scheduler, not stranded
    assert server.store.get(ids[0]).processed
    assert server.scheduler.backlog() == 2
    monkeypatch.setattr(server.executor, "_process_into_txn", real)
    server.run_until_idle()
    assert all(server.store.get(i).processed for i in ids)


def test_commit_failure_requeues_deadlocked_members(monkeypatch):
    """If the batch's final commit itself dies, members parked on the
    retry list must still go back to the scheduler — the caller never
    receives the list on the exception path — and messages enqueued by
    published members must still be registered for scheduling."""
    from repro.storage.errors import DeadlockError as DLE

    server = DemaqServer(
        "create queue q kind basic mode persistent;"
        "create queue out kind basic mode persistent;"
        "create rule relay for q if (//m) then do enqueue <o/> into out;",
        batch_size=2)
    ids = [server.enqueue("q", f"<m>{n}</m>") for n in range(2)]
    real = server.executor._process_into_txn

    def deadlock_first(txn, meta, message):
        if meta.msg_id == ids[0]:
            real(txn, meta, message)
            raise DLE("victim")
        return real(txn, meta, message)

    monkeypatch.setattr(server.executor, "_process_into_txn",
                        deadlock_first)
    monkeypatch.setattr(server.store, "apply_transaction",
                        lambda txn: (_ for _ in ()).throw(
                            OSError("commit I/O failure")))
    import pytest
    with pytest.raises(OSError):
        server.executor.process_batch(
            server.scheduler.next_batch(server.batch_size))
    # the deadlocked member is rescheduled and the published member's
    # enqueued <o/> is registered — nothing live is unscheduled
    assert not server.store.get(ids[0]).processed
    assert server.store.get(ids[1]).processed
    assert server.store.queue_depth("out") == 1
    assert server.scheduler.backlog() == 2


def test_failed_publish_poisons_the_transaction(monkeypatch):
    """A publish that dies midway may have half a suffix in the log;
    retrying it would duplicate records — the store must refuse."""
    import pytest
    from repro.storage import TransactionError

    store = DemaqServer("create queue q kind basic mode persistent;").store
    txn = store.begin()
    txn.insert_message("q", b"<m>1</m>", {}, [])
    monkeypatch.setattr(store.wal, "append",
                        lambda *a, **k: (_ for _ in ()).throw(
                            OSError("disk full")))
    with pytest.raises(OSError):
        store.publish(txn)
    assert txn.poisoned
    monkeypatch.undo()
    with pytest.raises(TransactionError):
        store.commit(txn)


# -- the differential property -------------------------------------------------

DIFF_APP = """
create errorqueue failures;
create queue failures kind basic mode persistent;
create queue intake kind basic mode persistent priority 2;
create queue archive kind basic mode persistent;
create property key as xs:string fixed queue intake, archive value //key;
create slicing byKey on key;
create rule split for intake
    if (//item) then
        do enqueue <copy><key>{string(//key)}</key><v>{string(//v)}</v></copy>
            into archive;
create rule boom for intake
    if (//bad) then do enqueue <x>{1 div 0}</x> into archive;
create rule tally for byKey
    if (count(qs:slice()) >= 3 and not(qs:slice()[/full])) then
        do enqueue <full><key>{string(qs:slicekey())}</key></full>
            into archive;
create rule retire for byKey
    if (qs:slice()[/full]) then do reset;
"""

_message = st.tuples(st.sampled_from(["item", "bad"]),
                     st.sampled_from(["k1", "k2", "k3"]),
                     st.integers(min_value=0, max_value=9))


def _run_workload(messages, batch_size):
    server = DemaqServer(DIFF_APP, batch_size=batch_size)
    for kind, key, value in messages:
        if kind == "item":
            body = f"<item><key>{key}</key><v>{value}</v></item>"
        else:
            body = f"<bad><key>{key}</key></bad>"
        server.enqueue("intake", body)
    server.run_until_idle()
    return server


@settings(max_examples=25, deadline=None)
@given(messages=st.lists(_message, min_size=1, max_size=20),
       batch_size=st.integers(min_value=2, max_value=9))
def test_batched_execution_is_equivalent_to_serial(messages, batch_size):
    """Same messages, slices, properties, and error queue — always."""
    solo = _run_workload(messages, batch_size=1)
    batched = _run_workload(messages, batch_size=batch_size)
    assert _state(solo) == _state(batched)
    # retention decisions agree too (processed × slice lifetimes)
    assert solo.collect_garbage() == batched.collect_garbage()
    assert _state(solo) == _state(batched)
    assert solo.executor.stats.messages_processed \
        == batched.executor.stats.messages_processed
    assert solo.executor.stats.rule_errors \
        == batched.executor.stats.rule_errors
