"""Integration tests for the Demaq server: the execution model of §3.1,
slicing semantics, retention, error handling, echo queues, priorities,
and recovery."""

import pytest

from repro import DemaqServer
from repro.qdl import ValidationError

PING_PONG = """
create queue inbox kind basic mode persistent;
create queue outbox kind basic mode persistent;
create rule reply for inbox
    if (//ping) then do enqueue <pong>{string(//ping/@n)}</pong> into outbox
"""


def make(source, **kwargs):
    return DemaqServer(source, **kwargs)


def test_basic_rule_fires():
    server = make(PING_PONG)
    server.enqueue("inbox", '<ping n="1"/>')
    server.run_until_idle()
    assert server.queue_texts("outbox") == ["<pong>1</pong>"]


def test_exactly_once_processing():
    server = make(PING_PONG)
    server.enqueue("inbox", '<ping n="1"/>')
    server.run_until_idle()
    server.run_until_idle()
    assert len(server.queue_texts("outbox")) == 1
    assert server.executor.stats.messages_processed == 2  # ping + pong


def test_condition_false_produces_nothing():
    server = make(PING_PONG)
    server.enqueue("inbox", "<other/>")
    server.run_until_idle()
    assert server.queue_texts("outbox") == []
    meta = server.store.queue_messages("inbox")[0]
    assert meta.processed


def test_cascading_rules():
    server = make("""
        create queue a kind basic mode persistent;
        create queue b kind basic mode persistent;
        create queue c kind basic mode persistent;
        create rule ab for a if (//go) then do enqueue <go/> into b;
        create rule bc for b if (//go) then do enqueue <done/> into c
    """)
    server.enqueue("a", "<go/>")
    server.run_until_idle()
    assert server.queue_texts("c") == ["<done/>"]


def test_multiple_rules_one_queue_all_fire():
    server = make("""
        create queue q kind basic mode persistent;
        create queue out kind basic mode persistent;
        create rule r1 for q if (//m) then do enqueue <from1/> into out;
        create rule r2 for q if (//m) then do enqueue <from2/> into out
    """)
    server.enqueue("q", "<m/>")
    server.run_until_idle()
    assert sorted(server.queue_texts("out")) == ["<from1/>", "<from2/>"]


def test_rule_reads_other_queue():
    # the checkCreditRating pattern of Fig. 6
    server = make("""
        create queue finance kind basic mode persistent;
        create queue invoices kind basic mode persistent;
        create queue crm kind basic mode persistent;
        create rule check for finance
            if (//requestCustomerInfo) then
                let $unpaid := qs:queue("invoices")
                    [//customerID = qs:message()//customerID]
                return
                    if ($unpaid) then do enqueue <refuse/> into crm
                    else do enqueue <accept/> into crm
    """)
    server.enqueue("invoices", "<invoice><customerID>23</customerID></invoice>")
    server.run_until_idle()
    server.enqueue("finance",
                   "<requestCustomerInfo><customerID>23</customerID>"
                   "</requestCustomerInfo>")
    server.run_until_idle()
    assert server.queue_texts("crm") == ["<refuse/>"]
    server.enqueue("finance",
                   "<requestCustomerInfo><customerID>42</customerID>"
                   "</requestCustomerInfo>")
    server.run_until_idle()
    assert server.queue_texts("crm")[-1] == "<accept/>"


def test_snapshot_semantics_enqueue_not_visible_to_same_evaluation():
    # a rule that enqueues into its own queue must not see the new message
    server = make("""
        create queue q kind basic mode persistent;
        create rule grow for q
            if (//seed and count(qs:queue()) < 3)
                then do enqueue <seed/> into q
    """)
    server.enqueue("q", "<seed/>")
    server.run_until_idle()
    # 1 seed -> sees 1 -> adds; 2nd sees 2 -> adds; 3rd sees 3 -> stops
    assert len(server.queue_texts("q")) == 3


def test_properties_flow_to_new_messages():
    server = make("""
        create queue crm kind basic mode persistent;
        create queue out kind basic mode persistent;
        create property orderID as xs:string fixed
            queue crm value //orderID
            queue out value //ref;
        create rule fwd for crm
            if (//orderID) then
                do enqueue <fwd><ref>{string(//orderID)}</ref></fwd> into out
    """)
    server.enqueue("crm", "<o><orderID>o-9</orderID></o>")
    server.run_until_idle()
    out_msg = server.live_messages("out")[0]
    assert out_msg.property("orderID") == "o-9"
    assert out_msg.property("creatingRule") == "fwd"
    assert out_msg.property("sourceQueue") == "crm"
    assert out_msg.property("creationTime") is not None


def test_inherited_property_propagates():
    server = make("""
        create queue a kind basic mode persistent;
        create queue b kind basic mode persistent;
        create property vip as xs:boolean inherited
            queue a, b value false();
        create rule fwd for a
            if (//m) then do enqueue <m2/> into b
    """)
    server.enqueue("a", "<m/>", properties={"vip": True})
    server.run_until_idle()
    assert server.live_messages("b")[0].property("vip") is True


def test_explicit_with_property():
    server = make("""
        create queue a kind basic mode persistent;
        create queue b kind basic mode persistent;
        create rule fwd for a
            if (//m) then do enqueue <m2/> into b
                with Sender value "http://ws.chem.invalid/"
                with retries value 1 + 2
    """)
    server.enqueue("a", "<m/>")
    server.run_until_idle()
    message = server.live_messages("b")[0]
    assert message.property("Sender") == "http://ws.chem.invalid/"
    assert message.property("retries") == 3


# -- slicing ----------------------------------------------------------------------

SLICED = """
create queue orders kind basic mode persistent;
create queue confirmations kind basic mode persistent;
create queue joined kind basic mode persistent;
create property orderID as xs:string fixed
    queue orders value //orderID
    queue confirmations value //orderID;
create slicing orderMsgs on orderID;
create rule joinPair for orderMsgs
    if (qs:slice()[/order] and qs:slice()[/confirmation]) then
        do enqueue <pair id="{qs:slicekey()}"/> into joined
"""


def test_slice_rule_joins_control_flow():
    server = make(SLICED)
    server.enqueue("orders", "<order><orderID>A</orderID></order>")
    server.run_until_idle()
    assert server.queue_texts("joined") == []
    server.enqueue("confirmations",
                   "<confirmation><orderID>A</orderID></confirmation>")
    server.run_until_idle()
    assert server.queue_texts("joined") == ['<pair id="A"/>']


def test_slices_are_isolated_by_key():
    server = make(SLICED)
    server.enqueue("orders", "<order><orderID>A</orderID></order>")
    server.enqueue("confirmations",
                   "<confirmation><orderID>B</orderID></confirmation>")
    server.run_until_idle()
    assert server.queue_texts("joined") == []


def test_slice_rule_fires_per_arrival_in_slice():
    # Rules fire once per *message arrival* (§3.1).  When both messages
    # are already stored before processing starts, each arrival sees the
    # complete slice and the join rule fires for both — the paper's
    # model has no built-in idempotence (applications reset the slice,
    # as Fig. 8 does, to get fire-once behaviour).
    server = make(SLICED)
    server.enqueue("orders", "<order><orderID>A</orderID></order>")
    server.enqueue("confirmations",
                   "<confirmation><orderID>A</orderID></confirmation>")
    server.run_until_idle()
    assert len(server.queue_texts("joined")) == 2


def test_message_without_slice_property_skips_slice_rules():
    server = make(SLICED)
    server.enqueue("orders", "<order/>")   # no orderID
    server.run_until_idle()
    assert server.queue_texts("joined") == []


RESET_APP = SLICED + """
;
create rule cleanup for orderMsgs
    if (qs:slice()[/confirmation]) then do reset
"""


def test_slice_reset_hides_old_messages():
    server = make(RESET_APP)
    server.enqueue("orders", "<order><orderID>A</orderID></order>")
    server.enqueue("confirmations",
                   "<confirmation><orderID>A</orderID></confirmation>")
    server.run_until_idle()
    assert server.slice_live_messages("orderMsgs", "A") == []
    assert server.store.slice_lifetime("orderMsgs", "A") >= 1


def test_retention_gc_after_reset():
    server = make(RESET_APP)
    server.enqueue("orders", "<order><orderID>A</orderID></order>")
    server.enqueue("confirmations",
                   "<confirmation><orderID>A</orderID></confirmation>")
    server.run_until_idle()
    collected = server.collect_garbage()
    assert collected == 3   # order + confirmation + the joined pair msg
    assert server.store.message_count() == 0


def test_unreset_slice_retains_messages():
    server = make(SLICED)
    server.enqueue("orders", "<order><orderID>A</orderID></order>")
    server.run_until_idle()
    assert server.collect_garbage() == 0
    assert server.store.message_count() == 1


def test_parameterized_reset_from_queue_rule():
    server = make("""
        create queue q kind basic mode persistent;
        create property k as xs:string fixed queue q value //k;
        create slicing s on k;
        create queue admin kind basic mode persistent;
        create rule wipe for admin
            if (//wipe) then do reset(s, string(//wipe/@key))
    """)
    server.enqueue("q", "<m><k>K1</k></m>")
    server.run_until_idle()
    assert len(server.slice_live_messages("s", "K1")) == 1
    server.enqueue("admin", '<wipe key="K1"/>')
    server.run_until_idle()
    assert server.slice_live_messages("s", "K1") == []


# -- error handling (§3.6) -------------------------------------------------------------

def test_rule_error_routed_to_rule_errorqueue():
    server = make("""
        create queue q kind basic mode persistent;
        create queue qErrors kind basic mode persistent;
        create rule boom for q errorqueue qErrors
            if (//m) then do enqueue <x>{1 idiv 0}</x> into q
    """)
    server.enqueue("q", "<m/>")
    server.run_until_idle()
    errors = server.queue_documents("qErrors")
    assert len(errors) == 1
    root = errors[0].root_element
    assert root.name.local_name == "error"
    assert root.first_child("applicationError") is not None
    assert root.first_child("rule").text == "boom"
    assert root.first_child("initialMessage") is not None


def test_error_includes_initial_message_content():
    server = make("""
        create queue q kind basic mode persistent;
        create queue errs kind basic mode persistent;
        create rule bad for q errorqueue errs
            if (//order) then do enqueue <x>{error('APP1', 'no stock')}</x>
                into q
    """)
    server.enqueue("q", "<order><orderID>77</orderID></order>")
    server.run_until_idle()
    error = server.queue_documents("errs")[0]
    # the Fig. 10 access pattern: /error/initialMessage//orderID
    from repro.xquery import evaluate_expression
    ids = evaluate_expression("/error/initialMessage//orderID/text()",
                              context_item=error)
    assert [n.value for n in ids] == ["77"]


def test_queue_level_errorqueue_fallback():
    server = make("""
        create queue errs kind basic mode persistent;
        create queue q kind basic mode persistent errorqueue errs;
        create rule boom for q
            if (//m) then do enqueue <x>{1 idiv 0}</x> into q
    """)
    server.enqueue("q", "<m/>")
    server.run_until_idle()
    assert len(server.queue_documents("errs")) == 1


def test_system_errorqueue_fallback():
    server = make("""
        create queue sysErrs kind basic mode persistent;
        create errorqueue sysErrs;
        create queue q kind basic mode persistent;
        create rule boom for q
            if (//m) then do enqueue <x>{error()}</x> into q
    """)
    server.enqueue("q", "<m/>")
    server.run_until_idle()
    assert len(server.queue_documents("sysErrs")) == 1


def test_unrouted_error_recorded():
    server = make("""
        create queue q kind basic mode persistent;
        create rule boom for q
            if (//m) then do enqueue <x>{error()}</x> into q
    """)
    server.enqueue("q", "<m/>")
    server.run_until_idle()
    assert len(server.unhandled_errors) == 1


def test_error_in_one_rule_does_not_block_others():
    server = make("""
        create queue q kind basic mode persistent;
        create queue out kind basic mode persistent;
        create queue errs kind basic mode persistent;
        create rule bad for q errorqueue errs
            if (//m) then do enqueue <x>{error()}</x> into q;
        create rule good for q
            if (//m) then do enqueue <ok/> into out
    """)
    server.enqueue("q", "<m/>")
    server.run_until_idle()
    assert server.queue_texts("out") == ["<ok/>"]
    assert len(server.queue_documents("errs")) == 1


def test_schema_validation_on_rule_enqueue():
    server = make("""
        create queue q kind basic mode persistent;
        create queue errs kind basic mode persistent;
        create queue strict kind basic mode persistent
            schema "<schema><element name='ok' type='xs:integer'/></schema>";
        create rule fwd for q errorqueue errs
            if (//m) then do enqueue <ok>not-a-number</ok> into strict
    """)
    server.enqueue("q", "<m/>")
    server.run_until_idle()
    assert server.queue_texts("strict") == []
    error = server.queue_documents("errs")[0]
    assert error.root_element.first_child("messageError") is not None


def test_schema_validation_on_external_enqueue_raises():
    from repro.xmldm import XMLError
    server = make("""
        create queue strict kind basic mode persistent
            schema "<schema><element name='ok' type='xs:integer'/></schema>"
    """)
    with pytest.raises(XMLError, match="schema"):
        server.enqueue("strict", "<nope/>")
    assert server.enqueue("strict", "<ok>5</ok>") > 0


# -- echo queues (§2.1.3) ----------------------------------------------------------------

ECHO_APP = """
create queue echoQueue kind echo mode persistent;
create queue finance kind basic mode persistent;
create queue out kind basic mode persistent;
create rule onTimeout for finance
    if (//timeoutNotification) then do enqueue <reminderSent/> into out
"""


def test_echo_delivers_after_timeout():
    server = make(ECHO_APP)
    server.enqueue("echoQueue", "<timeoutNotification/>",
                   properties={"timeout": 30, "target": "finance"})
    server.run_until_idle()
    assert server.queue_texts("finance") == []
    server.advance_time(31)
    assert len(server.queue_documents("finance")) == 1
    assert server.queue_texts("out") == ["<reminderSent/>"]


def test_echo_missing_target_is_message_error():
    server = make("""
        create queue errs kind basic mode persistent;
        create errorqueue errs;
        create queue echoQueue kind echo mode persistent;
    """)
    server.enqueue("echoQueue", "<m/>", properties={"timeout": 1})
    server.run_until_idle()
    assert len(server.queue_documents("errs")) == 1


def test_echo_message_gc_after_delivery():
    server = make(ECHO_APP)
    server.enqueue("echoQueue", "<timeoutNotification/>",
                   properties={"timeout": 1, "target": "finance"})
    server.run_until_idle()
    assert server.collect_garbage() == 0    # undelivered: retained
    server.advance_time(2)
    assert server.collect_garbage() >= 1    # delivered echo msg collectible


# -- priorities (§4.4.2) --------------------------------------------------------------------

def test_high_priority_queue_processed_first():
    server = make("""
        create queue slow kind basic mode persistent priority 0;
        create queue fast kind basic mode persistent priority 5;
        create queue log kind basic mode persistent;
        create rule rs for slow if (//m) then
            do enqueue <done q="slow"/> into log;
        create rule rf for fast if (//m) then
            do enqueue <done q="fast"/> into log
    """)
    server.enqueue("slow", "<m/>")
    server.enqueue("slow", "<m/>")
    server.enqueue("fast", "<m/>")   # arrives last, runs first
    server.run_until_idle()
    order = [d.root_element.attribute_value("q")
             for d in server.queue_documents("log")]
    assert order[0] == "fast"


# -- persistence and recovery ------------------------------------------------------------------

def test_unprocessed_messages_survive_crash(tmp_path):
    source = PING_PONG
    server = make(source, data_dir=str(tmp_path / "node"))
    server.enqueue("inbox", '<ping n="9"/>')
    # crash before any processing
    server.crash_and_recover()
    server.run_until_idle()
    assert server.queue_texts("outbox") == ["<pong>9</pong>"]
    server.close()


def test_processed_state_survives_crash(tmp_path):
    server = make(PING_PONG, data_dir=str(tmp_path / "node"))
    server.enqueue("inbox", '<ping n="1"/>')
    server.run_until_idle()
    server.crash_and_recover()
    server.run_until_idle()
    # not processed again: still exactly one pong
    assert len(server.queue_texts("outbox")) == 1
    server.close()


def test_transient_queue_loses_messages_on_crash(tmp_path):
    server = make("""
        create queue keep kind basic mode persistent;
        create queue scratch kind basic mode transient
    """, data_dir=str(tmp_path / "node"))
    server.enqueue("keep", "<a/>")
    server.enqueue("scratch", "<b/>")
    server.crash_and_recover()
    assert len(server.queue_texts("keep")) == 1
    assert server.queue_texts("scratch") == []
    server.close()


def test_pending_echo_survives_crash(tmp_path):
    server = make(ECHO_APP, data_dir=str(tmp_path / "node"))
    server.enqueue("echoQueue", "<timeoutNotification/>",
                   properties={"timeout": 50, "target": "finance"})
    server.run_until_idle()
    server.crash_and_recover()
    server.advance_time(51)
    assert len(server.queue_documents("finance")) == 1
    server.close()


# -- misc ---------------------------------------------------------------------------------------

def test_invalid_application_rejected():
    with pytest.raises(ValidationError):
        make("create rule r for nowhere if (//x) then do enqueue <y/> "
             "into nowhere")


def test_collections_feed_rules():
    server = make("""
        create collection pricelist;
        create queue q kind basic mode persistent;
        create queue out kind basic mode persistent;
        create rule priced for q
            if (//item) then
                let $price := collection("pricelist")
                    //entry[sku = string(qs:message()//item)]/price
                return do enqueue <quote>{string($price)}</quote> into out
    """)
    server.load_collection("pricelist", [
        "<list><entry><sku>A</sku><price>10</price></entry></list>"])
    server.enqueue("q", "<order><item>A</item></order>")
    server.run_until_idle()
    assert server.queue_texts("out") == ["<quote>10</quote>"]


def test_request_response_with_connection_handle():
    server = make("""
        create queue api kind basic mode persistent;
        create queue replies kind outgoingGateway mode persistent
            endpoint "demaq://caller";
        create rule answer for api
            if (//question) then do enqueue <answer>42</answer> into replies
    """)
    response = server.request("api", "<question/>")
    assert response is not None
    assert response.root_element.string_value == "42"


def test_multiple_echo_deliveries_due_at_once():
    # regression: step() must deliver *every* due echo message, not
    # just the first popped from the timer heap
    server = make(ECHO_APP)
    for index in range(4):
        server.enqueue("echoQueue", "<timeoutNotification/>",
                       properties={"timeout": 10 + index,
                                   "target": "finance"})
    server.run_until_idle()
    server.advance_time(60)
    assert len(server.queue_documents("finance")) == 4
    assert len(server.queue_texts("out")) == 4
