"""Scheduler accounting and priority-snapshot semantics (§4.4.2)."""

from repro import DemaqServer
from repro.engine.scheduler import Scheduler
from repro.qdl import parse_qdl

APP = parse_qdl("""
    create queue fast kind basic mode persistent priority 5;
    create queue slow kind basic mode persistent
""")


def test_requeue_tracked_separately_from_scheduled():
    scheduler = Scheduler(APP)
    scheduler.notify(1, "slow", 1)
    scheduler.notify(2, "fast", 2)
    assert scheduler.scheduled == 2
    msg = scheduler.next_message()
    assert msg == 2                       # priority first
    scheduler.requeue(msg, "fast", 2)
    assert scheduler.scheduled == 2       # a requeue is not a new arrival
    assert scheduler.requeues == 1
    # invariant: arrivals + requeues == dispatches + backlog
    assert scheduler.scheduled + scheduler.requeues \
        == scheduler.dispatched + scheduler.backlog()
    while scheduler.next_message() is not None:
        pass
    assert scheduler.scheduled + scheduler.requeues == scheduler.dispatched


def test_requeue_of_enqueued_message_is_noop():
    scheduler = Scheduler(APP)
    scheduler.notify(1, "slow", 1)
    scheduler.requeue(1, "slow", 1)
    assert scheduler.requeues == 0
    assert scheduler.backlog() == 1


def test_priorities_snapshotted_at_construction():
    scheduler = Scheduler(APP)
    # a racing recompilation mutating the app must not change the
    # ordering this scheduler instance applies
    APP.queues["slow"].priority = 99
    try:
        assert scheduler.queue_priority("slow") == 0
        scheduler.notify(1, "slow", 1)
        scheduler.notify(2, "fast", 2)
        assert scheduler.next_message() == 2
    finally:
        APP.queues["slow"].priority = 0


def test_requeue_keeps_original_arrival_position():
    scheduler = Scheduler(APP)
    scheduler.notify(1, "slow", 1)
    scheduler.notify(2, "slow", 2)
    first = scheduler.next_message()
    scheduler.requeue(first, "slow", 1)
    assert scheduler.next_message() == first   # seqno order preserved


def test_deadlock_retry_accounting_end_to_end():
    """A failed process_message requeues; counters stay consistent."""
    server = DemaqServer("""
        create queue q kind basic mode persistent;
        create queue out kind basic mode persistent;
        create rule r for q
            if (//m) then do enqueue <ack/> into out
    """)
    server.enqueue("q", "<m/>")
    scheduler = server.scheduler
    msg_id = scheduler.next_message()
    # simulate the deadlock-abort path the server takes in step_local
    meta = server.store.get(msg_id)
    scheduler.requeue(msg_id, meta.queue, meta.seqno)
    assert scheduler.requeues == 1
    server.run_until_idle()
    assert server.queue_texts("out") == ["<ack/>"]
    assert scheduler.scheduled + scheduler.requeues \
        == scheduler.dispatched + scheduler.backlog()
