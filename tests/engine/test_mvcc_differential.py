"""MVCC-vs-2PL differential: snapshot reads must not change results.

The tentpole contract: with ``mvcc=True`` rule reads scan a consistent
store snapshot instead of taking S locks, but every observable outcome
— messages, slices and lifetimes, properties, the error queue,
retention decisions — is identical to 2PL execution.  The hypothesis
differential at the bottom pins that over random workloads (slice
joins, rule errors, batched execution); a separate test covers
crash/recovery mid-chain, and the concurrency tests assert the headline
win — reader/writer deadlocks disappear — plus the backoff/timeout
knobs that ride along.
"""

import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DemaqServer
from repro.storage.errors import DeadlockError


# -- shared differential machinery ---------------------------------------------

DIFF_APP = """
create errorqueue failures;
create queue failures kind basic mode persistent;
create queue intake kind basic mode persistent priority 2;
create queue archive kind basic mode persistent;
create property key as xs:string fixed queue intake, archive value //key;
create slicing byKey on key;
create rule split for intake
    if (//item) then
        do enqueue <copy><key>{string(//key)}</key><v>{string(//v)}</v></copy>
            into archive;
create rule boom for intake
    if (//bad) then do enqueue <x>{1 div 0}</x> into archive;
create rule tally for byKey
    if (count(qs:slice()) >= 3 and not(qs:slice()[/full])) then
        do enqueue <full><key>{string(qs:slicekey())}</key></full>
            into archive;
create rule retire for byKey
    if (qs:slice()[/full]) then do reset;
"""

_message = st.tuples(st.sampled_from(["item", "bad"]),
                     st.sampled_from(["k1", "k2", "k3"]),
                     st.integers(min_value=0, max_value=9))


def _body(kind, key, value):
    if kind == "item":
        return f"<item><key>{key}</key><v>{value}</v></item>"
    return f"<bad><key>{key}</key></bad>"


def _state(server):
    out = {}
    for queue in server.app.queues:
        out[queue] = [
            (m.meta.msg_id, m.meta.seqno, m.body_text(), m.meta.processed,
             sorted((k, str(v)) for k, v in m.properties.items()),
             sorted(m.meta.slices))
            for m in server.live_messages(queue)]
    out["#lifetimes"] = dict(server.store._lifetimes)
    out["#unhandled"] = [str(d) for d in server.unhandled_errors]
    return out


def _run_workload(messages, mvcc, batch_size=1, data_dir=None):
    server = DemaqServer(DIFF_APP, batch_size=batch_size, mvcc=mvcc,
                         data_dir=data_dir)
    for kind, key, value in messages:
        server.enqueue("intake", _body(kind, key, value))
    server.run_until_idle()
    return server


# -- the differential properties -----------------------------------------------

@settings(max_examples=25, deadline=None)
@given(messages=st.lists(_message, min_size=1, max_size=20),
       batch_size=st.integers(min_value=1, max_value=9))
def test_mvcc_execution_is_equivalent_to_2pl(messages, batch_size):
    """Same messages, slices, properties, error queue — always."""
    locked = _run_workload(messages, mvcc=False, batch_size=batch_size)
    versioned = _run_workload(messages, mvcc=True, batch_size=batch_size)
    assert _state(locked) == _state(versioned)
    # retention decisions agree too (processed × slice lifetimes), and
    # MVCC's deferred physical deletes converge to the same store
    assert locked.collect_garbage() == versioned.collect_garbage()
    assert _state(locked) == _state(versioned)
    assert locked.executor.stats.messages_processed \
        == versioned.executor.stats.messages_processed
    assert locked.executor.stats.rule_errors \
        == versioned.executor.stats.rule_errors
    assert locked.store.message_count() == versioned.store.message_count()


def test_mvcc_crash_recovery_mid_chain_matches_2pl(tmp_path):
    """Crashing between batches and recovering must land both modes on
    the same replayed state — versioned index records replay correctly."""
    messages = [("item", "k1", 1), ("item", "k1", 2), ("bad", "k2", 0),
                ("item", "k1", 3), ("item", "k2", 4), ("item", "k2", 5)]
    states = []
    for mvcc in (False, True):
        server = DemaqServer(DIFF_APP, batch_size=3, mvcc=mvcc,
                             data_dir=str(tmp_path / f"mvcc{mvcc:d}"))
        for kind, key, value in messages[:3]:
            server.enqueue("intake", _body(kind, key, value))
        server.run_until_idle()
        server.crash_and_recover()
        for kind, key, value in messages[3:]:
            server.enqueue("intake", _body(kind, key, value))
        server.run_until_idle()
        server.collect_garbage()
        states.append(_state(server))
        server.close()
    assert states[0] == states[1]


# -- concurrency: the headline win ---------------------------------------------

CORRELATION_APP = """
create queue left kind basic mode persistent;
create queue right kind basic mode persistent;
create queue out kind basic mode transient;
create rule lscan for left
    if (count(qs:queue("right")) >= 0) then
        do enqueue <l/> into out;
create rule rscan for right
    if (count(qs:queue("left")) >= 0) then
        do enqueue <r/> into out;
"""


def _drain_concurrently(server, workers=4):
    def worker():
        while True:
            msg_id = server.scheduler.next_message()
            if msg_id is None:
                return
            if not server.executor.process_message(msg_id):
                meta = server.store.get(msg_id)
                if meta is not None:
                    server.scheduler.requeue(msg_id, meta.queue, meta.seqno)

    threads = [threading.Thread(target=worker) for _ in range(workers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


def test_cross_queue_scans_never_deadlock_under_mvcc():
    """Rules scanning each other's queues deadlock under 2PL (S vs IX
    on two queues in opposite orders); under MVCC the reads take no
    locks, so no reader/writer deadlock can form."""
    server = DemaqServer(CORRELATION_APP, mvcc=True)
    for index in range(60):
        server.enqueue("left" if index % 2 else "right", "<m/>")
    _drain_concurrently(server)
    assert server.executor.stats.deadlock_retries == 0
    assert server.scheduler.requeues == 0
    assert len(server.queue_texts("out")) == 60
    assert server.locks.deadlocks == 0


def test_rule_reads_take_no_locks_under_mvcc():
    server = DemaqServer(CORRELATION_APP, mvcc=True)
    msg = server.enqueue("left", "<m/>")
    txn = server.store.begin()
    meta = server.store.get(msg)
    from repro.queues import Message
    server.executor._process_into_txn(txn, meta, Message(meta, server.store))
    # write locks only: the queue scans left no S locks behind
    held = server.locks.held(txn.txn_id)
    assert held, "processed-mark/enqueue write locks expected"
    assert all(server.locks.mode_of(txn.txn_id, resource) in ("IX", "X")
               for resource in held)
    server.store.commit(txn)
    server.locking.release(txn.txn_id)


# -- the satellite knobs -------------------------------------------------------

def test_backoff_sleeps_with_jittered_exponential_ceiling(monkeypatch):
    server = DemaqServer("create queue q kind basic mode persistent;",
                         mvcc=True)
    ids = [server.enqueue("q", f"<m>{n}</m>") for n in range(3)]
    victim = ids[0]
    failures = {"left": 2}
    real = server.executor._process_into_txn

    def flaky(txn, meta, message):
        if meta.msg_id == victim and failures["left"]:
            failures["left"] -= 1
            raise DeadlockError("simulated")
        return real(txn, meta, message)

    slept = []
    monkeypatch.setattr(server.executor, "_process_into_txn", flaky)
    monkeypatch.setattr("repro.engine.executor.sleep", slept.append)
    server.run_until_idle()
    assert all(server.store.get(i).processed for i in ids)
    assert server.executor.stats.deadlock_retries == 2
    assert server.executor.stats.retry_backoffs == 2
    base, cap = (server.executor.retry_backoff_base,
                 server.executor.retry_backoff_cap)
    # full jitter: each sleep bounded by the attempt's doubling ceiling
    for attempt, delay in enumerate(slept, start=1):
        assert 0.0 <= delay <= min(cap, base * 2 ** (attempt - 1))
    # a successful retry clears the attempt counter
    assert server.executor._retry_attempts == {}


def test_backoff_disabled_by_env(monkeypatch):
    monkeypatch.setenv("DEMAQ_RETRY_BACKOFF", "0")
    server = DemaqServer("create queue q kind basic mode persistent;")
    assert server.executor.retry_backoff_base == 0.0
    server.executor._backoff_before_retry([1])     # must not sleep or count
    assert server.executor.stats.retry_backoffs == 0
    monkeypatch.setenv("DEMAQ_RETRY_BACKOFF", "0.01")
    assert DemaqServer("create queue q kind basic mode transient;") \
        .executor.retry_backoff_base == 0.01


def test_lock_timeout_from_environment(monkeypatch):
    monkeypatch.setenv("DEMAQ_LOCK_TIMEOUT", "2.5")
    server = DemaqServer("create queue q kind basic mode transient;")
    assert server.locks.default_timeout == 2.5
    assert server.locking.timeout == 2.5
    monkeypatch.delenv("DEMAQ_LOCK_TIMEOUT")
    assert DemaqServer("create queue q kind basic mode transient;") \
        .locks.default_timeout == 10.0
    # the explicit argument wins over the environment
    monkeypatch.setenv("DEMAQ_LOCK_TIMEOUT", "2.5")
    assert DemaqServer("create queue q kind basic mode transient;",
                       lock_timeout=7.0).locks.default_timeout == 7.0
