"""Regression: messages on undefined queues must not strand (§3.6).

Before the fix, ``RuleExecutor.process_message`` returned success for a
message whose queue has no definition, leaving it live-but-unscheduled
in the store forever.  Now it escalates to the application's error
queue (or surfaces on ``unhandled_errors``) and the message is retired.
"""

from repro import DemaqServer


def _strand_message(server, queue="ghost"):
    """Insert a message bypassing the engine (as recovery against a
    changed application would)."""
    txn = server.store.begin()
    op = txn.insert_message(queue, b"<orphan/>", {}, [])
    server.store.commit(txn)
    return op.msg_id


APP_WITH_ERROR_QUEUE = """
    create queue q kind basic mode persistent;
    create queue failures kind basic mode persistent;
    create errorqueue failures
"""


def test_stranded_message_escalates_to_error_queue():
    server = DemaqServer(APP_WITH_ERROR_QUEUE)
    msg_id = _strand_message(server)
    assert server.executor.process_message(msg_id) is True
    meta = server.store.get(msg_id)
    assert meta.processed, "stranded message must be retired"
    errors = server.queue_texts("failures")
    assert len(errors) == 1
    assert "systemError" in errors[0]
    assert "ghost" in errors[0]
    assert "<orphan/>" in errors[0]       # initialMessage copy


def test_stranded_message_without_error_queue_is_marked_processed():
    server = DemaqServer("create queue q kind basic mode persistent")
    msg_id = _strand_message(server)
    assert server.executor.process_message(msg_id) is True
    assert server.store.get(msg_id).processed
    assert len(server.unhandled_errors) == 1


def test_stranded_message_is_garbage_collectable():
    server = DemaqServer(APP_WITH_ERROR_QUEUE)
    msg_id = _strand_message(server)
    server.executor.process_message(msg_id)
    server.collect_garbage()
    assert server.store.get(msg_id) is None


def test_stranded_message_drains_through_step_local():
    """The scheduler path retires the message instead of looping."""
    server = DemaqServer(APP_WITH_ERROR_QUEUE)
    msg_id = _strand_message(server)
    meta = server.store.get(msg_id)
    server.scheduler.notify(msg_id, meta.queue, meta.seqno)
    server.run_until_idle()
    assert server.store.get(msg_id).processed
    assert server.queue_texts("failures")


def test_recovery_schedules_stranded_messages():
    """The production stranding path: a message recovered for a queue
    the application no longer defines must be scheduled and escalated
    by _bootstrap, not silently skipped."""
    server = DemaqServer(APP_WITH_ERROR_QUEUE)
    _strand_message(server)
    server.crash_and_recover()     # replays the WAL, then bootstraps
    server.run_until_idle()
    stranded = server.store.queue_messages("ghost")
    assert stranded and all(meta.processed for meta in stranded)
    assert len(server.queue_texts("failures")) == 1


def test_defined_queues_unaffected():
    server = DemaqServer(APP_WITH_ERROR_QUEUE)
    server.enqueue("q", "<m/>")
    server.run_until_idle()
    assert server.queue_texts("failures") == []
